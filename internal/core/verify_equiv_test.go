package core

import (
	"encoding/json"
	"math/rand"
	"runtime"
	"testing"

	"viewupdate/internal/fixtures"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/view"
)

// This file pins the delta-driven Verifier (overlay + incremental view
// maintenance) to the clone-based reference semantics it replaced: for
// every candidate the pipeline can produce — generator output and
// criterion-violating probes alike — validity under both notions and
// the reported side effects must agree exactly with "clone the
// database, apply, materialize, compare". Run with -race to also prove
// the parallel judging in TraceTranslate is sound.

// refAfter is the reference after-state: full clone, full apply, full
// materialization.
func refAfter(db *storage.Database, v view.View, tr *update.Translation) (*tuple.Set, error) {
	clone := db.Clone()
	if err := clone.Apply(tr); err != nil {
		return nil, err
	}
	return v.Materialize(clone), nil
}

func refValid(db *storage.Database, v view.View, r Request, tr *update.Translation) bool {
	want, err := r.ApplyToViewSet(v.Materialize(db))
	if err != nil {
		return false
	}
	after, err := refAfter(db, v, tr)
	if err != nil {
		return false
	}
	return after.Equal(want)
}

func refValidRequested(db *storage.Database, v view.View, r Request, tr *update.Translation) bool {
	after, err := refAfter(db, v, tr)
	if err != nil {
		return false
	}
	for _, t := range r.AddedTuples() {
		if !after.Contains(t) {
			return false
		}
	}
	for _, t := range r.RemovedTuples() {
		if after.Contains(t) {
			return false
		}
	}
	return true
}

func refSideEffects(db *storage.Database, v view.View, r Request, tr *update.Translation) (*Effects, error) {
	after, err := refAfter(db, v, tr)
	if err != nil {
		return nil, err
	}
	before := v.Materialize(db)
	requestedAdd := tuple.NewSet(r.AddedTuples()...)
	requestedRemove := tuple.NewSet(r.RemovedTuples()...)
	eff := &Effects{ExtraAdded: tuple.NewSet(), ExtraRemoved: tuple.NewSet()}
	for _, row := range after.Slice() {
		if !before.Contains(row) && !requestedAdd.Contains(row) {
			eff.ExtraAdded.Add(row)
		}
	}
	for _, row := range before.Slice() {
		if !after.Contains(row) && !requestedRemove.Contains(row) {
			eff.ExtraRemoved.Add(row)
		}
	}
	return eff, nil
}

// checkCandidates compares the verifier against the reference for
// every candidate, failing the test on the first disagreement.
func checkCandidates(t *testing.T, db *storage.Database, v view.View, r Request, cands []Candidate) {
	t.Helper()
	vf := NewVerifier(db, v, r)
	for _, c := range cands {
		tr := c.Translation
		if got, want := vf.Valid(tr), refValid(db, v, r, tr); got != want {
			t.Fatalf("Valid disagreement on %s for %s: overlay=%v clone=%v", tr, r, got, want)
		}
		if got, want := vf.ValidRequested(tr), refValidRequested(db, v, r, tr); got != want {
			t.Fatalf("ValidRequested disagreement on %s for %s: overlay=%v clone=%v", tr, r, got, want)
		}
		gotEff, gotErr := vf.SideEffects(tr)
		wantEff, wantErr := refSideEffects(db, v, r, tr)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("SideEffects error disagreement on %s: overlay=%v clone=%v", tr, gotErr, wantErr)
		}
		if gotErr == nil {
			if !gotEff.ExtraAdded.Equal(wantEff.ExtraAdded) || !gotEff.ExtraRemoved.Equal(wantEff.ExtraRemoved) {
				t.Fatalf("SideEffects disagreement on %s: overlay=%s clone=%s", tr, gotEff, wantEff)
			}
		}
	}
}

// candidatesAndProbes enumerates the generator candidates and the
// probe neighborhood; enumeration errors (inapplicable random
// requests) are reported as ok=false and skipped by callers.
func candidatesAndProbes(db *storage.Database, v view.View, r Request) ([]Candidate, bool) {
	cands, err := Enumerate(db, v, r)
	if err != nil {
		return nil, false
	}
	return append(cands, buildProbes(db, v, r, cands, 8)...), true
}

// randEmpDB loads a random EMP instance.
func randEmpDB(t *testing.T, e *fixtures.Emp, rng *rand.Rand) *storage.Database {
	db := storage.Open(e.Schema)
	nameAttr, _ := e.Rel.Attribute("Name")
	names := nameAttr.Domain.Values()
	locAttr, _ := e.Rel.Attribute("Location")
	locs := locAttr.Domain.Values()
	for no := int64(1); no <= 12; no++ {
		if rng.Intn(10) < 4 {
			continue
		}
		row := e.Tuple(no, names[rng.Intn(len(names))].Str(), locs[rng.Intn(len(locs))].Str(), rng.Intn(2) == 0)
		if err := db.Load("EMP", row); err != nil {
			t.Fatalf("loading EMP: %v", err)
		}
	}
	return db
}

// randSPRequest draws a random insert/delete/replace against an SP
// view of EMP.
func randSPRequest(e *fixtures.Emp, v *view.SP, db *storage.Database, rng *rand.Rand) (Request, bool) {
	rows := v.Materialize(db).Slice()
	switch rng.Intn(3) {
	case 0: // insert a random view tuple (may be inapplicable — fine)
		nameAttr, _ := e.Rel.Attribute("Name")
		names := nameAttr.Domain.Values()
		locAttr, _ := e.Rel.Attribute("Location")
		locs := locAttr.Domain.Values()
		u := e.ViewTuple(v, int64(1+rng.Intn(12)),
			names[rng.Intn(len(names))].Str(), locs[rng.Intn(len(locs))].Str(), rng.Intn(2) == 0)
		return InsertRequest(u), true
	case 1: // delete an existing row
		if len(rows) == 0 {
			return Request{}, false
		}
		return DeleteRequest(rows[rng.Intn(len(rows))]), true
	default: // replace one attribute of an existing row
		if len(rows) == 0 {
			return Request{}, false
		}
		old := rows[rng.Intn(len(rows))]
		attrs := v.Schema().Attributes()
		a := attrs[rng.Intn(len(attrs))]
		vals := a.Domain.Values()
		nu := old.MustWith(a.Name, vals[rng.Intn(len(vals))])
		if nu.Equal(old) {
			return Request{}, false
		}
		return ReplaceRequest(old, nu), true
	}
}

// TestVerifierMatchesCloneSP is the SP half of the Overlay ≡ Clone
// property: random EMP instances, random requests against both paper
// views, every generator candidate and probe judged both ways.
func TestVerifierMatchesCloneSP(t *testing.T) {
	e := fixtures.NewEmp(12)
	checked := 0
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randEmpDB(t, e, rng)
		for _, v := range []*view.SP{e.ViewP, e.ViewB} {
			for i := 0; i < 8; i++ {
				r, ok := randSPRequest(e, v, db, rng)
				if !ok {
					continue
				}
				cands, ok := candidatesAndProbes(db, v, r)
				if !ok {
					continue
				}
				checkCandidates(t, db, v, r, cands)
				checked += len(cands)
			}
		}
	}
	if checked < 100 {
		t.Fatalf("property test exercised only %d candidates; workload generator is broken", checked)
	}
}

// randUniversityDB loads a random consistent three-level instance:
// departments first, then courses and students, then enrollments
// referencing only loaded parents.
func randUniversityDB(t *testing.T, u *fixtures.University, rng *rand.Rand) *storage.Database {
	db := storage.Open(u.Schema)
	bldgAttr, _ := u.Dept.Attribute("Building")
	bldgs := bldgAttr.Domain.Values()
	deptAttr, _ := u.Dept.Attribute("DName")
	var depts []string
	for _, d := range deptAttr.Domain.Values() {
		if rng.Intn(10) < 2 {
			continue
		}
		depts = append(depts, d.Str())
		if err := db.Load("DEPT", u.DeptTuple(d.Str(), bldgs[rng.Intn(len(bldgs))].Str())); err != nil {
			t.Fatalf("loading DEPT: %v", err)
		}
	}
	titleAttr, _ := u.Course.Attribute("Title")
	titles := titleAttr.Domain.Values()
	cidAttr, _ := u.Course.Attribute("CID")
	var cids []string
	for _, c := range cidAttr.Domain.Values() {
		if len(depts) == 0 || rng.Intn(10) < 3 {
			continue
		}
		cids = append(cids, c.Str())
		ct := u.CourseTuple(c.Str(), titles[rng.Intn(len(titles))].Str(), depts[rng.Intn(len(depts))])
		if err := db.Load("COURSE", ct); err != nil {
			t.Fatalf("loading COURSE: %v", err)
		}
	}
	snameAttr, _ := u.Student.Attribute("SName")
	snames := snameAttr.Domain.Values()
	sidAttr, _ := u.Student.Attribute("SID")
	var sids []string
	for _, s := range sidAttr.Domain.Values() {
		if rng.Intn(10) < 3 {
			continue
		}
		sids = append(sids, s.Str())
		st := u.StudentTuple(s.Str(), snames[rng.Intn(len(snames))].Str(), int64(1+rng.Intn(4)))
		if err := db.Load("STUDENT", st); err != nil {
			t.Fatalf("loading STUDENT: %v", err)
		}
	}
	for eid := int64(1); eid <= 6; eid++ {
		if len(sids) == 0 || len(cids) == 0 || rng.Intn(10) < 4 {
			continue
		}
		et := u.EnrollTuple(eid, sids[rng.Intn(len(sids))], cids[rng.Intn(len(cids))], int64(rng.Intn(5)))
		if err := db.Load("ENROLL", et); err != nil {
			t.Fatalf("loading ENROLL: %v", err)
		}
	}
	return db
}

// randJoinRequest draws a random request against the TRANSCRIPT view:
// deletes and replaces of materialized rows, inserts assembled from
// loaded base tuples (so they are frequently, not always, applicable).
func randJoinRequest(u *fixtures.University, db *storage.Database, rng *rand.Rand) (Request, bool) {
	rows := u.View.Materialize(db).Slice()
	switch rng.Intn(3) {
	case 0: // insert: compose a row from existing student/course/dept
		students := db.Tuples("STUDENT")
		courses := db.Tuples("COURSE")
		if len(students) == 0 || len(courses) == 0 {
			return Request{}, false
		}
		s := students[rng.Intn(len(students))]
		c := courses[rng.Intn(len(courses))]
		dept, ok := db.LookupKey(tuple.MustNew(u.Dept, c.MustGet("Dpt"), db.Tuples("DEPT")[0].MustGet("Building")))
		if !ok {
			return Request{}, false
		}
		row := u.ViewTuple(int64(1+rng.Intn(6)),
			s.MustGet("SID").Str(), c.MustGet("CID").Str(), int64(rng.Intn(5)),
			s.MustGet("SName").Str(), s.MustGet("Year").Int(),
			c.MustGet("Title").Str(), c.MustGet("Dpt").Str(), dept.MustGet("Building").Str())
		return InsertRequest(row), true
	case 1:
		if len(rows) == 0 {
			return Request{}, false
		}
		return DeleteRequest(rows[rng.Intn(len(rows))]), true
	default:
		if len(rows) == 0 {
			return Request{}, false
		}
		old := rows[rng.Intn(len(rows))]
		attrs := u.View.Schema().Attributes()
		a := attrs[rng.Intn(len(attrs))]
		vals := a.Domain.Values()
		nu := old.MustWith(a.Name, vals[rng.Intn(len(vals))])
		if nu.Equal(old) {
			return Request{}, false
		}
		return ReplaceRequest(old, nu), true
	}
}

// TestVerifierMatchesCloneJoin is the SPJ half of the property: the
// three-level university tree, where non-root candidates take the
// reverse-reference-index IVM path and root-only candidates take the
// delta path — both must agree with the clone reference.
func TestVerifierMatchesCloneJoin(t *testing.T) {
	u := fixtures.NewUniversity(6)
	checked := 0
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randUniversityDB(t, u, rng)
		for i := 0; i < 8; i++ {
			r, ok := randJoinRequest(u, db, rng)
			if !ok {
				continue
			}
			cands, ok := candidatesAndProbes(db, u.View, r)
			if !ok {
				continue
			}
			checkCandidates(t, db, u.View, r, cands)
			checked += len(cands)
		}
	}
	if checked < 50 {
		t.Fatalf("property test exercised only %d candidates; workload generator is broken", checked)
	}
}

// traceJSON renders a trace with the timing phases stripped — the only
// legitimately nondeterministic field.
func traceJSON(t *testing.T, tr *Trace) []byte {
	t.Helper()
	clone := *tr
	clone.Phases = nil
	b, err := json.Marshal(&clone)
	if err != nil {
		t.Fatalf("marshaling trace: %v", err)
	}
	return b
}

// TestTraceByteIdenticalUnderParallelism pins the determinism contract
// of the parallel candidate judging: a trace produced on one CPU is
// byte-identical (timings aside) to one produced with the full worker
// pool.
func TestTraceByteIdenticalUnderParallelism(t *testing.T) {
	e := fixtures.NewEmp(20)
	u := fixtures.NewUniversity(6)
	cases := []struct {
		name string
		db   *storage.Database
		v    view.View
		r    Request
	}{
		{"sp-delete", e.PaperInstance(), e.ViewP,
			DeleteRequest(e.ViewTuple(e.ViewP, 17, "Susan", "New York", true))},
		{"sp-insert", e.PaperInstance(), e.ViewP,
			InsertRequest(e.ViewTuple(e.ViewP, 9, "Judy", "New York", false))},
		{"join-delete", u.SmallInstance(), u.View,
			DeleteRequest(u.ViewTuple(1, "s1", "db", 4, "Ada", 2, "Databases", "cs", "Gates"))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prev := runtime.GOMAXPROCS(1)
			_, seq, seqErr := TraceTranslate(tc.db, tc.v, nil, tc.r, TraceOptions{Probes: true})
			runtime.GOMAXPROCS(prev)
			_, par, parErr := TraceTranslate(tc.db, tc.v, nil, tc.r, TraceOptions{Probes: true})
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("error disagreement: sequential=%v parallel=%v", seqErr, parErr)
			}
			if got, want := traceJSON(t, par), traceJSON(t, seq); string(got) != string(want) {
				t.Fatalf("parallel trace differs from sequential:\nseq: %s\npar: %s", want, got)
			}
		})
	}
}

// TestVerifierWithBeforeAgreesAndSharesSafely pins the contract of
// NewVerifierWithBefore: judged with a caller-supplied materialization
// (the serving engine hands in its per-snapshot cached set), every
// candidate gets the identical verdict and side effects as the
// materialize-it-yourself constructor, and the supplied set comes back
// untouched — the verifier must treat it as shared, copy-on-write.
func TestVerifierWithBeforeAgreesAndSharesSafely(t *testing.T) {
	e := fixtures.NewEmp(12)
	checked := 0
	for seed := int64(100); seed < 112; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randEmpDB(t, e, rng)
		for _, v := range []*view.SP{e.ViewP, e.ViewB} {
			for i := 0; i < 6; i++ {
				r, ok := randSPRequest(e, v, db, rng)
				if !ok {
					continue
				}
				cands, ok := candidatesAndProbes(db, v, r)
				if !ok {
					continue
				}
				before := v.Materialize(db)
				snapshot := before.Clone()
				plain := NewVerifier(db, v, r)
				preset := NewVerifierWithBefore(db, v, r, before)
				for _, c := range cands {
					if got, want := preset.Valid(c.Translation), plain.Valid(c.Translation); got != want {
						t.Fatalf("Valid(%s) with before=%v, without=%v", c.Translation, got, want)
					}
					effP, errP := preset.SideEffects(c.Translation)
					effQ, errQ := plain.SideEffects(c.Translation)
					if (errP == nil) != (errQ == nil) {
						t.Fatalf("SideEffects(%s) err with before=%v, without=%v", c.Translation, errP, errQ)
					}
					if errP == nil {
						if !effP.ExtraAdded.Equal(effQ.ExtraAdded) || !effP.ExtraRemoved.Equal(effQ.ExtraRemoved) {
							t.Fatalf("SideEffects(%s) diverge: %s vs %s", c.Translation, effP, effQ)
						}
					}
					checked++
				}
				if !before.Equal(snapshot) {
					t.Fatalf("verifier mutated the caller-supplied before-set (view %s, request %s)", v.Name(), r)
				}
			}
		}
	}
	if checked < 50 {
		t.Fatalf("property test exercised only %d candidates; workload generator is broken", checked)
	}
}
