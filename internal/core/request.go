// Package core implements the paper's contribution: translation of view
// update requests into database update translations.
//
// It provides
//
//   - Request: single-tuple view insert/delete/replace requests and
//     their validity conditions (§4-2);
//   - the five criteria for acceptable translations (§3) as executable
//     checkers;
//   - the complete translation enumerators for SP views — algorithm
//     classes I-1, I-2 (with extend-insert), D-1, D-2, and R-1 … R-5
//     (with extend-replace) (§4);
//   - the join-view algorithms SPJ-D, SPJ-I and SPJ-R and their
//     composition with SP views (§5);
//   - policies that select one translation among the candidates (the
//     paper's "additional semantics" chosen by the DBA).
package core

import (
	"fmt"

	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/view"
)

// A Request is a single-tuple update expressed against a view. For
// Insert and Delete, Tuple is the fully specified view tuple. For
// Replace, Old and New are the replaced and replacement view tuples.
type Request struct {
	Kind  update.Kind
	Tuple tuple.T
	Old   tuple.T
	New   tuple.T
}

// InsertRequest asks that t appear in the view.
func InsertRequest(t tuple.T) Request { return Request{Kind: update.Insert, Tuple: t} }

// DeleteRequest asks that t disappear from the view.
func DeleteRequest(t tuple.T) Request { return Request{Kind: update.Delete, Tuple: t} }

// ReplaceRequest asks that old be replaced by new in the view, as one
// atomic action.
func ReplaceRequest(old, new tuple.T) Request {
	return Request{Kind: update.Replace, Old: old, New: new}
}

// AddedTuples returns the view tuples the request adds (insert tuple,
// replacement new tuple).
func (r Request) AddedTuples() []tuple.T {
	switch r.Kind {
	case update.Insert:
		return []tuple.T{r.Tuple}
	case update.Replace:
		return []tuple.T{r.New}
	}
	return nil
}

// RemovedTuples returns the view tuples the request removes.
func (r Request) RemovedTuples() []tuple.T {
	switch r.Kind {
	case update.Delete:
		return []tuple.T{r.Tuple}
	case update.Replace:
		return []tuple.T{r.Old}
	}
	return nil
}

// Mentioned returns all view tuples mentioned by the request.
func (r Request) Mentioned() []tuple.T {
	return append(r.RemovedTuples(), r.AddedTuples()...)
}

// String renders the request.
func (r Request) String() string {
	switch r.Kind {
	case update.Insert:
		return fmt.Sprintf("view-insert %s", r.Tuple)
	case update.Delete:
		return fmt.Sprintf("view-delete %s", r.Tuple)
	case update.Replace:
		return fmt.Sprintf("view-replace %s -> %s", r.Old, r.New)
	}
	return "<invalid request>"
}

// ApplyToViewSet computes U(V): the view extension after performing the
// request directly on the given extension, "were the view an ordinary
// relation". It fails when the request is not applicable to the
// extension (e.g. deleting an absent tuple).
func (r Request) ApplyToViewSet(s *tuple.Set) (*tuple.Set, error) {
	out := s.Clone()
	switch r.Kind {
	case update.Insert:
		if out.Contains(r.Tuple) {
			return nil, fmt.Errorf("core: inserted tuple %s already in view", r.Tuple)
		}
		out.Add(r.Tuple)
	case update.Delete:
		if !out.Remove(r.Tuple) {
			return nil, fmt.Errorf("core: deleted tuple %s not in view", r.Tuple)
		}
	case update.Replace:
		if !out.Remove(r.Old) {
			return nil, fmt.Errorf("core: replaced tuple %s not in view", r.Old)
		}
		if out.Contains(r.New) {
			return nil, fmt.Errorf("core: replacement tuple %s already in view", r.New)
		}
		out.Add(r.New)
	default:
		return nil, fmt.Errorf("core: invalid request kind")
	}
	return out, nil
}

// ValidateRequest checks the paper's applicability conditions of a
// request against the current database state (§4-3, §4-4, §4-5 for SP
// views; §5-2 adds join consistency for join views):
//
//   - insert: the new view tuple satisfies the selection condition
//     (restricted to visible attributes) and no view tuple with its key
//     exists;
//   - delete: the view tuple is currently in the view;
//   - replace: the replaced tuple is in the view, the replacement tuple
//     is not, both satisfy the selection condition, and any existing
//     view tuple with the replacement's key is the replaced tuple.
func ValidateRequest(db storage.Source, v view.View, r Request) error {
	switch vv := v.(type) {
	case *view.SP:
		return validateSPRequest(db, vv, r)
	case *view.Join:
		return validateJoinRequest(db, vv, r)
	default:
		return fmt.Errorf("core: unsupported view type %T", v)
	}
}

func checkSchema(v view.View, ts ...tuple.T) error {
	for _, t := range ts {
		if t.IsZero() || t.Relation() != v.Schema() {
			return fmt.Errorf("core: tuple %s is not of view %s's schema", t, v.Name())
		}
	}
	return nil
}

func validateSPRequest(db storage.Source, v *view.SP, r Request) error {
	switch r.Kind {
	case update.Insert:
		if err := checkSchema(v, r.Tuple); err != nil {
			return err
		}
		if !v.Selection().MatchesProjected(r.Tuple) {
			return fmt.Errorf("core: %s does not satisfy the selection condition of %s", r.Tuple, v.Name())
		}
		if row, ok := v.Lookup(db, r.Tuple); ok {
			return fmt.Errorf("core: view %s already contains %s with the key of %s", v.Name(), row, r.Tuple)
		}
		return nil
	case update.Delete:
		if err := checkSchema(v, r.Tuple); err != nil {
			return err
		}
		row, ok := v.Lookup(db, r.Tuple)
		if !ok || !row.Equal(r.Tuple) {
			return fmt.Errorf("core: %s is not currently in view %s", r.Tuple, v.Name())
		}
		return nil
	case update.Replace:
		if err := checkSchema(v, r.Old, r.New); err != nil {
			return err
		}
		if r.Old.Equal(r.New) {
			return fmt.Errorf("core: replacement does not change the tuple")
		}
		row, ok := v.Lookup(db, r.Old)
		if !ok || !row.Equal(r.Old) {
			return fmt.Errorf("core: replaced tuple %s is not in view %s", r.Old, v.Name())
		}
		if !v.Selection().MatchesProjected(r.New) {
			return fmt.Errorf("core: replacement %s does not satisfy the selection condition of %s", r.New, v.Name())
		}
		if newRow, ok := v.Lookup(db, r.New); ok {
			if newRow.Equal(r.New) {
				return fmt.Errorf("core: replacement tuple %s is already in view %s", r.New, v.Name())
			}
			if !newRow.Equal(r.Old) {
				return fmt.Errorf("core: view %s contains %s conflicting with the replacement's key", v.Name(), newRow)
			}
		}
		return nil
	default:
		return fmt.Errorf("core: invalid request kind")
	}
}

func validateJoinRequest(db storage.Source, j *view.Join, r Request) error {
	selOK := func(t tuple.T) error {
		if err := j.JoinConsistent(t); err != nil {
			return err
		}
		for i, n := range j.Nodes() {
			p := j.ProjectNode(i, t)
			if !n.SP.Selection().MatchesProjected(p) {
				return fmt.Errorf("core: %s fails the selection of node %s of %s", t, n.SP.Name(), j.Name())
			}
		}
		return nil
	}
	switch r.Kind {
	case update.Insert:
		if err := checkSchema(j, r.Tuple); err != nil {
			return err
		}
		if err := selOK(r.Tuple); err != nil {
			return err
		}
		if row, ok := j.Lookup(db, r.Tuple); ok {
			return fmt.Errorf("core: view %s already contains %s with the key of %s", j.Name(), row, r.Tuple)
		}
		return nil
	case update.Delete:
		if err := checkSchema(j, r.Tuple); err != nil {
			return err
		}
		row, ok := j.Lookup(db, r.Tuple)
		if !ok || !row.Equal(r.Tuple) {
			return fmt.Errorf("core: %s is not currently in view %s", r.Tuple, j.Name())
		}
		return nil
	case update.Replace:
		if err := checkSchema(j, r.Old, r.New); err != nil {
			return err
		}
		if r.Old.Equal(r.New) {
			return fmt.Errorf("core: replacement does not change the tuple")
		}
		row, ok := j.Lookup(db, r.Old)
		if !ok || !row.Equal(r.Old) {
			return fmt.Errorf("core: replaced tuple %s is not in view %s", r.Old, j.Name())
		}
		if err := selOK(r.New); err != nil {
			return err
		}
		if newRow, ok := j.Lookup(db, r.New); ok {
			if newRow.Equal(r.New) {
				return fmt.Errorf("core: replacement tuple %s is already in view %s", r.New, j.Name())
			}
			if !newRow.Equal(r.Old) {
				return fmt.Errorf("core: view %s contains %s conflicting with the replacement's key", j.Name(), newRow)
			}
		}
		return nil
	default:
		return fmt.Errorf("core: invalid request kind")
	}
}
