package core_test

import (
	"errors"
	"testing"
	"time"

	"viewupdate/internal/core"
	"viewupdate/internal/faultinject"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/vuerr"
)

// TestPolicyErrorChains pins the sentinel contracts of the policies:
// empty candidate sets are ErrNoCandidates, refusal to guess is
// ErrAmbiguous, and both keep their historical message text.
func TestPolicyErrorChains(t *testing.T) {
	var r core.Request
	for _, p := range []core.Policy{
		core.PickFirst{},
		core.RejectAmbiguous{},
		core.PreferClasses{Order: []string{"D-1"}},
		core.WithDefaults{Base: core.PickFirst{}},
	} {
		_, err := p.Choose(r, nil)
		if !errors.Is(err, core.ErrNoCandidates) {
			t.Fatalf("%s on empty set: %v, want ErrNoCandidates", p.Name(), err)
		}
	}

	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	amb := core.NewTranslator(f.ViewB, core.RejectAmbiguous{})
	// Deleting Susan from the baseball view is the paper's ambiguous
	// case: destroy her or flip the flag.
	_, err := amb.Apply(db, core.DeleteRequest(f.ViewTuple(f.ViewB, 17, "Susan", "New York", true)))
	if !errors.Is(err, core.ErrAmbiguous) {
		t.Fatalf("ambiguous delete: %v, want ErrAmbiguous chain", err)
	}
	// The transient/corrupt classifiers stay orthogonal.
	if vuerr.IsTransient(err) || vuerr.IsCorrupt(err) {
		t.Fatal("policy errors must not classify as transient or corrupt")
	}
}

// TestApplyRetriesTransientFaults injects one transient storage fault:
// the first apply attempt fails, the bounded retry succeeds, and the
// backoff schedule is exponential.
func TestApplyRetriesTransientFaults(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	var slept []time.Duration
	tr := core.NewTranslator(f.ViewP, core.PickFirst{})
	tr.Retry = core.RetryPolicy{
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	faultinject.Enable(faultinject.NewPlan(1).
		FailNth(faultinject.SiteApply, 1, vuerr.ErrTransient))
	defer faultinject.Disable()

	if _, err := tr.Apply(db, core.InsertRequest(f.ViewTuple(f.ViewP, 19, "Judy", "New York", false))); err != nil {
		t.Fatalf("apply with retry: %v", err)
	}
	if db.Len("EMP") != 6 {
		t.Fatal("retried apply did not land")
	}
	if len(slept) != 1 || slept[0] != time.Millisecond {
		t.Fatalf("slept %v, want one 1ms backoff", slept)
	}
}

// TestApplyRetryExhaustion keeps the fault firing: after MaxAttempts
// the transient error surfaces, classifiable through the wrap.
func TestApplyRetryExhaustion(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	var slept []time.Duration
	tr := core.NewTranslator(f.ViewP, core.PickFirst{})
	tr.Retry = core.RetryPolicy{
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	plan := faultinject.NewPlan(1).
		FailEveryNth(faultinject.SiteApply, 1, 100, vuerr.ErrTransient)
	faultinject.Enable(plan)
	defer faultinject.Disable()

	_, err := tr.Apply(db, core.InsertRequest(f.ViewTuple(f.ViewP, 19, "Judy", "New York", false)))
	if !vuerr.IsTransient(err) {
		t.Fatalf("exhausted retry error = %v, want transient chain", err)
	}
	if got := plan.Hits(faultinject.SiteApply); got != 3 {
		t.Fatalf("apply attempted %d times, want 3", got)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("slept %v, want exponential 1ms, 2ms", slept)
	}
	if db.Len("EMP") != 5 {
		t.Fatal("failed apply must not change the database")
	}
}

// TestApplyBackoffNeverOverflows: with a large MaxAttempts the
// exponential backoff must cap instead of shifting the duration into
// negative or absurd sleeps.
func TestApplyBackoffNeverOverflows(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	var slept []time.Duration
	tr := core.NewTranslator(f.ViewP, core.PickFirst{})
	tr.Retry = core.RetryPolicy{
		MaxAttempts: 70, // unclamped, 1ms << 69 wraps negative
		Backoff:     time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	faultinject.Enable(faultinject.NewPlan(1).
		FailEveryNth(faultinject.SiteApply, 1, 1000, vuerr.ErrTransient))
	defer faultinject.Disable()

	_, err := tr.Apply(db, core.InsertRequest(f.ViewTuple(f.ViewP, 19, "Judy", "New York", false)))
	if !vuerr.IsTransient(err) {
		t.Fatalf("exhausted retry error = %v, want transient chain", err)
	}
	if len(slept) != 69 {
		t.Fatalf("slept %d times, want 69", len(slept))
	}
	cap := time.Millisecond << 16
	for i, d := range slept {
		if d <= 0 || d > cap {
			t.Fatalf("sleep %d = %v, want within (0, %v]", i, d, cap)
		}
		if i > 0 && d < slept[i-1] {
			t.Fatalf("backoff shrank: sleep %d = %v after %v", i, d, slept[i-1])
		}
	}
	if last := slept[len(slept)-1]; last != cap {
		t.Fatalf("final backoff = %v, want capped at %v", last, cap)
	}
}

// TestApplyDoesNotRetryPermanentErrors: constraint violations return
// immediately with a single attempt.
func TestApplyDoesNotRetryPermanentErrors(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	tr := core.NewTranslator(f.ViewP, core.PickFirst{})
	tr.Retry = core.RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {
		t.Fatal("permanent errors must not back off")
	}}
	plan := faultinject.NewPlan(1) // counting only, no faults
	faultinject.Enable(plan)
	defer faultinject.Disable()

	// Ghost delete: fails during translation, before any apply.
	_, err := tr.Apply(db, core.DeleteRequest(f.ViewTuple(f.ViewP, 19, "Judy", "New York", false)))
	if err == nil {
		t.Fatal("invalid request should fail")
	}
	if got := plan.Hits(faultinject.SiteApply); got != 0 {
		t.Fatalf("translation failure reached apply %d times", got)
	}
}
