package core

import (
	"strings"
	"testing"

	"viewupdate/internal/algebra"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

// TestSPJDeleteTouchesOnlyRoot validates SPJ-D: "delete the tuple from
// the root relation (or SP view) only".
func TestSPJDeleteTouchesOnlyRoot(t *testing.T) {
	f := fixtures.NewABCXD()
	db := f.PaperInstance()
	row := f.ViewTuple("c1", "a", 3, 1)

	cands, err := EnumerateJoinDelete(db, f.View, row)
	if err != nil {
		t.Fatal(err)
	}
	// Identity SP views: no selection, so no D-2 — exactly D-1.
	if len(cands) != 1 {
		t.Fatalf("want 1 candidate, got %s", DescribeCandidates(cands))
	}
	c := cands[0]
	if !strings.Contains(c.Class, "SPJ-D") || !strings.Contains(c.Class, "D-1") {
		t.Fatalf("class = %s", c.Class)
	}
	for _, op := range c.Translation.Ops() {
		if op.RelationName() != "CXD" {
			t.Fatalf("SPJ-D must only touch the root, got %s", op)
		}
	}
	if err := db.Apply(c.Translation); err != nil {
		t.Fatal(err)
	}
	if f.View.Materialize(db).Contains(row) {
		t.Fatal("row should be gone")
	}
	// AB is untouched.
	if db.Len("AB") != 2 {
		t.Fatal("parent relation must be untouched")
	}
}

// TestSPJInsertCases exercises SPJ-I's three cases.
func TestSPJInsertCases(t *testing.T) {
	f := fixtures.NewABCXD()
	db := f.PaperInstance()

	// Case 2 everywhere: new root c3 referencing new parent a1.
	u := f.ViewTuple("c3", "a1", 5, 7)
	cands, err := EnumerateJoinInsert(db, f.View, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("identity views should give exactly 1 candidate, got %s", DescribeCandidates(cands))
	}
	tr := cands[0].Translation
	if len(tr.Inserts()) != 2 {
		t.Fatalf("expected inserts into CXD and AB, got %s", tr)
	}
	if err := db.Apply(tr); err != nil {
		t.Fatal(err)
	}
	if !f.View.Materialize(db).Contains(u) {
		t.Fatal("inserted row missing")
	}

	// Case 1 at a parent (exists exactly): new root referencing the
	// existing (a,1): only the root insert happens.
	u2 := f.ViewTuple("c4", "a", 6, 1)
	cands, err = EnumerateJoinInsert(db, f.View, u2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("got %s", DescribeCandidates(cands))
	}
	ops := cands[0].Translation.Ops()
	if len(ops) != 1 || ops[0].RelationName() != "CXD" || ops[0].Kind != update.Insert {
		t.Fatalf("existing parent must be untouched, got %s", cands[0].Translation)
	}

	// Case 3 at a parent (key exists, data conflicts): inserting a row
	// claiming (a, 9) while AB holds (a, 1) replaces the parent — a
	// view side effect on other rows referencing a.
	u3 := f.ViewTuple("c4", "a", 6, 9)
	cands, err = EnumerateJoinInsert(db, f.View, u3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("got %s", DescribeCandidates(cands))
	}
	var sawReplace bool
	for _, op := range cands[0].Translation.Ops() {
		if op.Kind == update.Replace && op.RelationName() == "AB" {
			sawReplace = true
			if op.New.MustGet("B") != value.NewInt(9) {
				t.Fatalf("parent replace wrong: %s", op)
			}
		}
	}
	if !sawReplace {
		t.Fatalf("case 3 should replace the conflicting parent, got %s", cands[0].Translation)
	}
	if !strings.Contains(cands[0].Class, "R-1") {
		t.Fatalf("case 3 replacement should be key-preserving R-1, class=%s", cands[0].Class)
	}

	// With identity SP views, a root projection that exists exactly
	// implies the view row exists (inclusion dependencies always
	// resolve), so the request itself is invalid — the validator, not
	// case 1, rejects it.
	u4 := f.ViewTuple("c1", "a", 3, 9)
	if _, err := EnumerateJoinInsert(db, f.View, u4); err == nil ||
		!strings.Contains(err.Error(), "already contains") {
		t.Fatalf("identity-view duplicate key should be invalid, got %v", err)
	}
}

// TestSPJInsertCase1RootRejects builds the one state where SPJ-I's
// Case 1 fires at the root: the root projection exists exactly but the
// view row is hidden by a parent selection. The insertion is a valid
// view request, yet SPJ-I rejects it "as it violates an FD in the
// view".
func TestSPJInsertCase1RootRejects(t *testing.T) {
	f := fixtures.NewABCXD()
	// Parent SP view selects B ∈ {1}.
	selAB := algebra.NewSelection(f.AB).MustAddTerm("B", value.NewInt(1))
	parent := &view.Node{SP: view.MustNewSP("ABsel", selAB, f.AB.AttributeNames())}
	root := &view.Node{SP: view.Identity("CXDv", f.CXD), Refs: []view.Ref{{Attrs: []string{"X"}, Target: parent}}}
	jv := view.MustNewJoin("SelParent", f.Schema, root)

	db := storage.Open(f.Schema)
	// Parent (a,2) fails the selection, so c1's row is hidden.
	if err := db.LoadAll(f.ABTuple("a", 2), f.CXDTuple("c1", "a", 3)); err != nil {
		t.Fatal(err)
	}
	if jv.Materialize(db).Len() != 0 {
		t.Fatal("precondition: view empty")
	}
	// Insert (c1, a, 3, a, 1): valid request (no view row with key c1),
	// root projection (c1,a,3) exists exactly -> Case 1 at root.
	u, err := MakeRow(jv.Schema(), "c1", "a", 3, "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateRequest(db, jv, InsertRequest(u)); err != nil {
		t.Fatalf("request should be valid: %v", err)
	}
	if _, err := EnumerateJoinInsert(db, jv, u); err == nil ||
		!strings.Contains(err.Error(), "FD") {
		t.Fatalf("root case 1 should reject with FD violation, got %v", err)
	}
}

// TestSPJInsertSideEffectOnSiblings verifies the paper's point that
// join-view updates may have view side effects: replacing a shared
// parent changes sibling rows.
func TestSPJInsertSideEffectOnSiblings(t *testing.T) {
	f := fixtures.NewABCXD()
	db := f.PaperInstance()
	before := f.View.Materialize(db)
	sibling := f.ViewTuple("c1", "a", 3, 1)
	if !before.Contains(sibling) {
		t.Fatal("precondition: sibling row present")
	}
	// c4 claims (a, 9): replaces parent (a,1) -> (a,9).
	u := f.ViewTuple("c4", "a", 6, 9)
	tr := NewTranslator(f.View, PickFirst{})
	if _, err := tr.Apply(db, InsertRequest(u)); err != nil {
		t.Fatal(err)
	}
	after := f.View.Materialize(db)
	if !after.Contains(u) {
		t.Fatal("inserted row missing")
	}
	if after.Contains(sibling) {
		// Sibling must have mutated to B=9: the view side effect.
		t.Fatal("sibling should have changed")
	}
	if !after.Contains(f.ViewTuple("c1", "a", 3, 9)) {
		t.Fatal("sibling should now show B=9")
	}
	// Exact-validity fails (side effects), requested-validity holds.
	db2 := f.PaperInstance()
	cands, err := EnumerateJoinInsert(db2, f.View, u)
	if err != nil {
		t.Fatal(err)
	}
	if Valid(db2, f.View, InsertRequest(u), cands[0].Translation) {
		t.Fatal("side-effecting translation cannot be exactly valid")
	}
	if !ValidRequested(db2, f.View, InsertRequest(u), cands[0].Translation) {
		t.Fatal("translation should satisfy requested-changes validity")
	}
}

// TestSPJReplaceStateWalk exercises SPJ-R's state machine on the
// three-level university tree.
func TestSPJReplaceStateWalk(t *testing.T) {
	u := fixtures.NewUniversity(10)
	db := u.SmallInstance()

	// Old row: enrollment 1 = (s1 Ada, db Databases cs Gates).
	old := u.ViewTuple(1, "s1", "db", 4, "Ada", 2, "Databases", "cs", "Gates")
	if !u.View.Materialize(db).Contains(old) {
		t.Fatalf("precondition: old row present; view = %v", u.View.Materialize(db).Slice())
	}

	// Case R-1 chain then R-2 at a leaf-ish node: change only Grade
	// (root attribute) — everything else matches: root R-2, parents
	// untouched (state I cases I-3/case R-1... the root's projection
	// changes with the same key, parents' projections match exactly).
	new1 := u.ViewTuple(1, "s1", "db", 3, "Ada", 2, "Databases", "cs", "Gates")
	cands, err := EnumerateJoinReplace(db, u.View, old, new1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("got %s", DescribeCandidates(cands))
	}
	ops := cands[0].Translation.Ops()
	if len(ops) != 1 || ops[0].Kind != update.Replace || ops[0].RelationName() != "ENROLL" {
		t.Fatalf("grade change should be one ENROLL replace, got %s", cands[0].Translation)
	}

	// Re-pointing the enrollment at another existing student (s2):
	// root replaced; state I at STUDENT: (s2, Ben, 3) exists exactly
	// (Case I-3, no-op).
	new2 := u.ViewTuple(1, "s2", "db", 4, "Ben", 3, "Databases", "cs", "Gates")
	cands, err = EnumerateJoinReplace(db, u.View, old, new2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("got %s", DescribeCandidates(cands))
	}
	ops = cands[0].Translation.Ops()
	if len(ops) != 1 || ops[0].RelationName() != "ENROLL" {
		t.Fatalf("re-pointing at existing student should only touch ENROLL, got %s", cands[0].Translation)
	}

	// Re-pointing at a brand-new student s3: root replace + STUDENT
	// insert (Case I-2).
	new3 := u.ViewTuple(1, "s3", "db", 4, "Cy", 1, "Databases", "cs", "Gates")
	cands, err = EnumerateJoinReplace(db, u.View, old, new3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("got %s", DescribeCandidates(cands))
	}
	tr3 := cands[0].Translation
	if len(tr3.Ops()) != 2 || len(tr3.Inserts()) != 1 {
		t.Fatalf("want ENROLL replace + STUDENT insert, got %s", tr3)
	}
	if tr3.Inserts()[0].Relation().Name() != "STUDENT" {
		t.Fatalf("insert should hit STUDENT, got %s", tr3)
	}
	if err := db.Apply(tr3); err != nil {
		t.Fatal(err)
	}
	if !u.View.Materialize(db).Contains(new3) {
		t.Fatal("replacement row missing")
	}
	if u.View.Materialize(db).Contains(old) {
		t.Fatal("old row should be gone")
	}

	// Case I-4 deep in the tree: re-point course at existing dept with
	// conflicting building data.
	old2 := u.ViewTuple(2, "s2", "os", 3, "Ben", 3, "Systems", "cs", "Gates")
	if !u.View.Materialize(db).Contains(old2) {
		t.Fatal("precondition: enrollment 2 present")
	}
	// Change course os's dept to ee, whose building in DEPT is Allen,
	// but claim Building=Soda: STUDENT no-op, COURSE replace (R-1 via
	// state I case I-1->R-2? course key same: state I case I-1 -> state
	// R, projections differ, same key -> SP replace), DEPT: key ee
	// exists with Building=Allen, conflicting -> I-4 replace.
	new4 := u.ViewTuple(2, "s2", "os", 3, "Ben", 3, "Systems", "ee", "Soda")
	cands, err = EnumerateJoinReplace(db, u.View, old2, new4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("got %s", DescribeCandidates(cands))
	}
	tr4 := cands[0].Translation
	repl := tr4.Replacements()
	if len(repl) != 2 {
		t.Fatalf("want COURSE and DEPT replaces, got %s", tr4)
	}
	rels := map[string]bool{}
	for _, r := range repl {
		rels[r.Old.Relation().Name()] = true
	}
	if !rels["COURSE"] || !rels["DEPT"] {
		t.Fatalf("replaces should hit COURSE and DEPT, got %s", tr4)
	}
	if err := db.Apply(tr4); err != nil {
		t.Fatal(err)
	}
	if !u.View.Materialize(db).Contains(new4) {
		t.Fatal("deep replacement row missing")
	}
}

// TestSPJReplaceKeyChange exercises Case R-3 (key change at the root).
func TestSPJReplaceKeyChange(t *testing.T) {
	f := fixtures.NewABCXD()
	db := f.PaperInstance()
	old := f.ViewTuple("c1", "a", 3, 1)
	// New root key c3 (fresh), same parent.
	new := f.ViewTuple("c3", "a", 3, 1)
	cands, err := EnumerateJoinReplace(db, f.View, old, new)
	if err != nil {
		t.Fatal(err)
	}
	// Root SP is identity: key-change with no conflict gives R-2 only
	// (D-2/I-2 need selections/conflicts). Parents: no-op (exists).
	if len(cands) != 1 {
		t.Fatalf("got %s", DescribeCandidates(cands))
	}
	if !strings.Contains(cands[0].Class, "R-2") {
		t.Fatalf("class = %s", cands[0].Class)
	}
	if err := db.Apply(cands[0].Translation); err != nil {
		t.Fatal(err)
	}
	after := f.View.Materialize(db)
	if !after.Contains(new) || after.Contains(old) {
		t.Fatal("root key change failed")
	}
}

// TestSPJRequestValidation checks join-request validity conditions.
func TestSPJRequestValidation(t *testing.T) {
	f := fixtures.NewABCXD()
	db := f.PaperInstance()

	// Join-inconsistent insert (X != A) is rejected.
	bad := f.View.Schema()
	badTuple, err := MakeRow(bad, "c3", "a", 5, "a2", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateRequest(db, f.View, InsertRequest(badTuple)); err == nil {
		t.Fatal("join-inconsistent tuple should be rejected")
	}
	// Deleting an absent row is rejected.
	absent := f.ViewTuple("c3", "a", 5, 1)
	if err := ValidateRequest(db, f.View, DeleteRequest(absent)); err == nil {
		t.Fatal("absent row delete should be rejected")
	}
	// Inserting an existing key is rejected.
	dup := f.ViewTuple("c1", "a2", 5, 2)
	if err := ValidateRequest(db, f.View, InsertRequest(dup)); err == nil {
		t.Fatal("existing-key insert should be rejected")
	}
}

// TestSPJAtomicUndo: a translation that fails mid-apply leaves no
// partial state ("the entire view update request fails and is undone").
func TestSPJAtomicUndo(t *testing.T) {
	u := fixtures.NewUniversity(10)
	db := u.SmallInstance()
	old := u.ViewTuple(1, "s1", "db", 4, "Ada", 2, "Databases", "cs", "Gates")
	new := u.ViewTuple(1, "s3", "db", 4, "Cy", 1, "Databases", "cs", "Gates")
	cands, err := EnumerateJoinReplace(db, u.View, old, new)
	if err != nil {
		t.Fatal(err)
	}
	tr := cands[0].Translation
	// Sabotage: preinsert the student the translation wants to insert,
	// with different data, so the insert conflicts at apply time.
	if err := db.Load("STUDENT", u.StudentTuple("s3", "Dee", 4)); err != nil {
		t.Fatal(err)
	}
	snapshot := db.Clone()
	if err := db.Apply(tr); err == nil {
		t.Fatal("apply should fail on key conflict")
	}
	if !db.Equal(snapshot) {
		t.Fatal("failed apply must leave the database unchanged")
	}
}

// TestSPJWithSelectionsComposesD2 checks the §5-3 composition: a join
// view whose root SP view has a selection exposes D-2 alternatives for
// SPJ-D.
func TestSPJWithSelectionsComposesD2(t *testing.T) {
	f := fixtures.NewABCXD()
	// Root SP view selects D ∈ {1..5}; flipping D to an excluded value
	// (6..9) is D-2.
	sel := algebra.NewSelection(f.CXD).MustAddTerm("D",
		value.NewInt(1), value.NewInt(2), value.NewInt(3), value.NewInt(4), value.NewInt(5))
	rootSP := view.MustNewSP("CXDsel", sel, f.CXD.AttributeNames())
	parent := &view.Node{SP: view.Identity("ABv", f.AB)}
	root := &view.Node{SP: rootSP, Refs: []view.Ref{{Attrs: []string{"X"}, Target: parent}}}
	jv := view.MustNewJoin("SelJoin", f.Schema, root)

	db := storage.Open(f.Schema)
	if err := db.LoadAll(f.ABTuple("a", 1), f.CXDTuple("c1", "a", 3), f.CXDTuple("c2", "a", 7)); err != nil {
		t.Fatal(err)
	}
	// Only c1 (D=3) passes the root selection.
	row, err := MakeRow(jv.Schema(), "c1", "a", 3, "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !jv.Materialize(db).Contains(row) {
		t.Fatalf("precondition: row visible; got %v", jv.Materialize(db).Slice())
	}

	cands, err := EnumerateJoinDelete(db, jv, row)
	if err != nil {
		t.Fatal(err)
	}
	// D-1 plus D-2 for each excluded D value (6,7,8,9) = 5 candidates.
	if len(cands) != 5 {
		t.Fatalf("want 5 candidates, got %s", DescribeCandidates(cands))
	}
	var d2 *Candidate
	for i := range cands {
		if strings.Contains(cands[i].Class, "D-2") {
			d2 = &cands[i]
			break
		}
	}
	if d2 == nil {
		t.Fatalf("no D-2 candidate in %s", DescribeCandidates(cands))
	}
	if err := db.Apply(d2.Translation); err != nil {
		t.Fatal(err)
	}
	if jv.Materialize(db).Contains(row) {
		t.Fatal("row should be out of the view")
	}
	if db.Len("CXD") != 2 {
		t.Fatal("base tuple should survive D-2")
	}
}

// TestJoinCandidateExplosionGuard: the Cartesian composition refuses to
// build more than maxJoinCandidates alternatives instead of silently
// truncating or exhausting memory.
func TestJoinCandidateExplosionGuard(t *testing.T) {
	// Each node hides three non-selecting attributes with 8-value
	// domains: 512 extend-insert choices per node, 262144 > 100000 in
	// the two-node product.
	hidden := func(name string) *schema.Domain {
		vals := make([]value.Value, 8)
		for i := range vals {
			vals[i] = value.NewInt(int64(i))
		}
		d, err := schema.NewDomain(name, vals...)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	keyDom, err := schema.IntRangeDomain("XKeyDom", 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	parent := schema.MustRelation("PBIG", []schema.Attribute{
		{Name: "PK", Domain: keyDom},
		{Name: "PH1", Domain: hidden("PH1D")},
		{Name: "PH2", Domain: hidden("PH2D")},
		{Name: "PH3", Domain: hidden("PH3D")},
	}, []string{"PK"})
	root := schema.MustRelation("RBIG", []schema.Attribute{
		{Name: "RK", Domain: keyDom},
		{Name: "RF", Domain: keyDom},
		{Name: "RH1", Domain: hidden("RH1D")},
		{Name: "RH2", Domain: hidden("RH2D")},
		{Name: "RH3", Domain: hidden("RH3D")},
	}, []string{"RK"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(parent); err != nil {
		t.Fatal(err)
	}
	if err := sch.AddRelation(root); err != nil {
		t.Fatal(err)
	}
	if err := sch.AddInclusion(schema.InclusionDependency{Child: "RBIG", ChildAttrs: []string{"RF"}, Parent: "PBIG"}); err != nil {
		t.Fatal(err)
	}
	rootSP, err := view.NewSP("RBIGv", algebra.NewSelection(root), []string{"RK", "RF"})
	if err != nil {
		t.Fatal(err)
	}
	parentSP, err := view.NewSP("PBIGv", algebra.NewSelection(parent), []string{"PK"})
	if err != nil {
		t.Fatal(err)
	}
	pn := &view.Node{SP: parentSP}
	rn := &view.Node{SP: rootSP, Refs: []view.Ref{{Attrs: []string{"RF"}, Target: pn}}}
	jv, err := view.NewJoin("BIG", sch, rn)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.Open(sch)
	u, err := MakeRow(jv.Schema(), 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = EnumerateJoinInsert(db, jv, u)
	if err == nil || !strings.Contains(err.Error(), "candidate translations") {
		t.Fatalf("explosion should be refused, got %v", err)
	}
}

// TestSPJReplaceComposesRootAlternatives: a key-changing SPJ-R at a
// root with a selection exposes the SP-level R-2 and R-4 alternatives
// through the composition.
func TestSPJReplaceComposesRootAlternatives(t *testing.T) {
	f := fixtures.NewABCXD()
	sel := algebra.NewSelection(f.CXD).MustAddTerm("D",
		value.NewInt(1), value.NewInt(2), value.NewInt(3))
	rootSP := view.MustNewSP("CXDsel2", sel, f.CXD.AttributeNames())
	parent := &view.Node{SP: view.Identity("ABv", f.AB)}
	root := &view.Node{SP: rootSP, Refs: []view.Ref{{Attrs: []string{"X"}, Target: parent}}}
	jv := view.MustNewJoin("SelRoot", f.Schema, root)

	db := storage.Open(f.Schema)
	if err := db.LoadAll(f.ABTuple("a", 1), f.CXDTuple("c1", "a", 3)); err != nil {
		t.Fatal(err)
	}
	old, err := MakeRow(jv.Schema(), "c1", "a", 3, "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	new, err := MakeRow(jv.Schema(), "c3", "a", 3, "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := EnumerateJoinReplace(db, jv, old, new)
	if err != nil {
		t.Fatal(err)
	}
	// Root key change, no conflict: R-2 (1) + R-4 (D-2 on D: 6 excluded
	// values × I-1 extend-insert: nothing hidden → 1) = 7.
	if len(cands) != 7 {
		t.Fatalf("want 7 candidates, got %s", DescribeCandidates(cands))
	}
	sawR2, sawR4 := false, false
	for _, c := range cands {
		if strings.Contains(c.Class, "R-2") {
			sawR2 = true
		}
		if strings.Contains(c.Class, "R-4") {
			sawR4 = true
		}
		// Every candidate realizes the replacement.
		if !ValidRequested(db, jv, ReplaceRequest(old, new), c.Translation) {
			t.Fatalf("candidate %s does not realize the replacement", c)
		}
	}
	if !sawR2 || !sawR4 {
		t.Fatalf("missing classes: R-2=%v R-4=%v", sawR2, sawR4)
	}
}
