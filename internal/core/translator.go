package core

import (
	"fmt"
	"log/slog"

	"viewupdate/internal/obs"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

// A Translator binds a view to a policy and translates view update
// requests into database updates — the paper's "view update
// translator", a mapping from view update requests to translations.
type Translator struct {
	View   view.View
	Policy Policy
}

// NewTranslator builds a translator; a nil policy defaults to
// PickFirst.
func NewTranslator(v view.View, p Policy) *Translator {
	if p == nil {
		p = PickFirst{}
	}
	return &Translator{View: v, Policy: p}
}

// Translate enumerates the complete candidate set for the request and
// lets the policy choose. The database state is read, not modified.
func (t *Translator) Translate(db *storage.Database, r Request) (Candidate, error) {
	span := obs.StartSpan("core.translate")
	defer span.End()
	cands, err := Enumerate(db, t.View, r)
	if err != nil {
		obs.Inc("core.translate.enumerate_error")
		return Candidate{}, err
	}
	psp := obs.StartSpan("core.policy.choose")
	c, err := t.Policy.Choose(r, cands)
	psp.End()
	if err != nil {
		obs.Inc("core.translate.policy_error")
		return Candidate{}, err
	}
	if obs.Enabled() {
		obs.Observe("core.translate.candidates", int64(len(cands)))
		obs.Log(slog.LevelDebug, "translated",
			"view", t.View.Name(), "request", r.Kind.String(),
			"candidates", len(cands), "policy", t.Policy.Name(), "class", c.Class)
	}
	return c, nil
}

// Apply translates the request and applies the chosen translation to
// the database atomically, returning the applied candidate. Errors are
// contextualized by stage: translation failures are wrapped with the
// request, application failures with the chosen translation, so callers
// can tell enumeration/policy errors from storage errors.
func (t *Translator) Apply(db *storage.Database, r Request) (Candidate, error) {
	c, err := t.Translate(db, r)
	if err != nil {
		return Candidate{}, fmt.Errorf("core: translating %s on %s: %w", r, t.View.Name(), err)
	}
	if err := db.Apply(c.Translation); err != nil {
		return Candidate{}, fmt.Errorf("core: applying %s: %w", c.Translation, err)
	}
	return c, nil
}

// Row builds a tuple of the translator's view schema from raw Go
// values in schema order; int, int64, string and bool are accepted.
func (t *Translator) Row(raw ...interface{}) (tuple.T, error) {
	return MakeRow(t.View.Schema(), raw...)
}

// MakeRow builds a tuple of rel from raw Go values in schema order.
func MakeRow(rel *schema.Relation, raw ...interface{}) (tuple.T, error) {
	if len(raw) != rel.Arity() {
		return tuple.T{}, fmt.Errorf("core: %s expects %d values, got %d", rel.Name(), rel.Arity(), len(raw))
	}
	vals := make([]value.Value, len(raw))
	for i, r := range raw {
		switch x := r.(type) {
		case int:
			vals[i] = value.NewInt(int64(x))
		case int64:
			vals[i] = value.NewInt(x)
		case string:
			vals[i] = value.NewString(x)
		case bool:
			vals[i] = value.NewBool(x)
		case value.Value:
			vals[i] = x
		default:
			return tuple.T{}, fmt.Errorf("core: unsupported raw value %v (%T)", r, r)
		}
	}
	return tuple.New(rel, vals...)
}

// MustRow is MakeRow, panicking on error; for tests and examples.
func MustRow(rel *schema.Relation, raw ...interface{}) tuple.T {
	t, err := MakeRow(rel, raw...)
	if err != nil {
		panic(err)
	}
	return t
}

// CheckCandidates verifies that every candidate is valid and satisfies
// the five criteria under the given validity semantics, returning a
// descriptive error for the first failure. Used by the paranoid mode of
// the CLI and by tests; the paper's theorems say this never fails for
// generator output on SP views.
func CheckCandidates(db *storage.Database, v view.View, r Request, cands []Candidate, exact bool) error {
	validFn := func(tr *update.Translation) bool { return Valid(db, v, r, tr) }
	if !exact {
		validFn = func(tr *update.Translation) bool { return ValidRequested(db, v, r, tr) }
	}
	for _, c := range cands {
		if !validFn(c.Translation) {
			return fmt.Errorf("core: candidate %s is not a valid translation of %s", c, r)
		}
		if viols := CheckCriteria(db, v, r, c.Translation, CheckOptions{Valid: validFn}); len(viols) > 0 {
			return fmt.Errorf("core: candidate %s: %v", c, viols[0])
		}
	}
	return nil
}
