package core

import (
	"fmt"
	"log/slog"
	"math"
	"time"

	"viewupdate/internal/obs"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
	"viewupdate/internal/vuerr"
)

// A Translator binds a view to a policy and translates view update
// requests into database updates — the paper's "view update
// translator", a mapping from view update requests to translations.
type Translator struct {
	View   view.View
	Policy Policy
	// Retry bounds the automatic retries of transient apply failures;
	// the zero value retries nothing.
	Retry RetryPolicy
}

// A RetryPolicy bounds the retries Translator.Apply performs when the
// database apply fails transiently (vuerr.IsTransient). Translation is
// never re-run — the candidate was chosen against a state the failed
// apply did not change.
type RetryPolicy struct {
	// MaxAttempts is the total number of apply attempts; values below 1
	// mean a single attempt (no retry).
	MaxAttempts int
	// Backoff is the sleep before the first retry, doubling on each
	// further retry. Zero sleeps not at all.
	Backoff time.Duration
	// Sleep replaces time.Sleep, for tests.
	Sleep func(time.Duration)
}

// attempts normalizes MaxAttempts.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// maxBackoffShift caps the exponential doubling: past 2^16 times the
// base backoff the sleep stops growing, so a large MaxAttempts cannot
// overflow the duration arithmetic into negative or absurd sleeps.
const maxBackoffShift = 16

// wait sleeps before retry attempt n (n >= 1), with exponential
// backoff: Backoff doubled min(n-1, maxBackoffShift) times, never
// allowed to overflow.
func (p RetryPolicy) wait(n int) {
	if p.Backoff <= 0 {
		return
	}
	d := p.Backoff
	for i := 1; i < n && i <= maxBackoffShift; i++ {
		if d > math.MaxInt64/2 {
			break
		}
		d *= 2
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// NewTranslator builds a translator; a nil policy defaults to
// PickFirst.
func NewTranslator(v view.View, p Policy) *Translator {
	if p == nil {
		p = PickFirst{}
	}
	return &Translator{View: v, Policy: p}
}

// Translate enumerates the complete candidate set for the request and
// lets the policy choose. The database state is read, not modified.
func (t *Translator) Translate(db storage.Source, r Request) (Candidate, error) {
	span := obs.StartSpan("core.translate")
	defer span.End()
	cands, err := Enumerate(db, t.View, r)
	if err != nil {
		obs.Inc("core.translate.enumerate_error")
		return Candidate{}, err
	}
	psp := obs.StartSpan("core.policy.choose")
	c, err := t.Policy.Choose(r, cands)
	psp.End()
	if err != nil {
		obs.Inc("core.translate.policy_error")
		return Candidate{}, err
	}
	if obs.Enabled() {
		obs.Observe("core.translate.candidates", int64(len(cands)))
		obs.Log(slog.LevelDebug, "translated",
			"view", t.View.Name(), "request", r.Kind.String(),
			"candidates", len(cands), "policy", t.Policy.Name(), "class", c.Class)
	}
	return c, nil
}

// Apply translates the request and applies the chosen translation to
// the database atomically, returning the applied candidate. Errors are
// contextualized by stage: translation failures are wrapped with the
// request, application failures with the chosen translation, so callers
// can tell enumeration/policy errors from storage errors.
//
// Transient apply failures (vuerr.IsTransient, e.g. injected I/O
// faults) are retried up to Retry.MaxAttempts with exponential
// backoff; a failed apply rolls the database back, so re-applying the
// same translation is sound. Non-transient failures — constraint
// violations, corruption — return immediately.
func (t *Translator) Apply(db *storage.Database, r Request) (Candidate, error) {
	c, err := t.Translate(db, r)
	if err != nil {
		return Candidate{}, fmt.Errorf("core: translating %s on %s: %w", r, t.View.Name(), err)
	}
	var applyErr error
	for attempt := 0; attempt < t.Retry.attempts(); attempt++ {
		if attempt > 0 {
			obs.Inc("core.apply.retry")
			t.Retry.wait(attempt)
		}
		applyErr = db.Apply(c.Translation)
		if applyErr == nil {
			return c, nil
		}
		if !vuerr.IsTransient(applyErr) {
			break
		}
	}
	return Candidate{}, fmt.Errorf("core: applying %s: %w", c.Translation, applyErr)
}

// Row builds a tuple of the translator's view schema from raw Go
// values in schema order; int, int64, string and bool are accepted.
func (t *Translator) Row(raw ...interface{}) (tuple.T, error) {
	return MakeRow(t.View.Schema(), raw...)
}

// MakeRow builds a tuple of rel from raw Go values in schema order.
func MakeRow(rel *schema.Relation, raw ...interface{}) (tuple.T, error) {
	if len(raw) != rel.Arity() {
		return tuple.T{}, fmt.Errorf("core: %s expects %d values, got %d", rel.Name(), rel.Arity(), len(raw))
	}
	vals := make([]value.Value, len(raw))
	for i, r := range raw {
		switch x := r.(type) {
		case int:
			vals[i] = value.NewInt(int64(x))
		case int64:
			vals[i] = value.NewInt(x)
		case string:
			vals[i] = value.NewString(x)
		case bool:
			vals[i] = value.NewBool(x)
		case value.Value:
			vals[i] = x
		default:
			return tuple.T{}, fmt.Errorf("core: unsupported raw value %v (%T)", r, r)
		}
	}
	return tuple.New(rel, vals...)
}

// MustRow is MakeRow, panicking on error; for tests and examples.
func MustRow(rel *schema.Relation, raw ...interface{}) tuple.T {
	t, err := MakeRow(rel, raw...)
	if err != nil {
		panic(err)
	}
	return t
}

// CheckCandidates verifies that every candidate is valid and satisfies
// the five criteria under the given validity semantics, returning a
// descriptive error for the first failure. Used by the paranoid mode of
// the CLI and by tests; the paper's theorems say this never fails for
// generator output on SP views.
func CheckCandidates(db storage.Source, v view.View, r Request, cands []Candidate, exact bool) error {
	vf := NewVerifier(db, v, r)
	validFn := vf.Valid
	if !exact {
		validFn = vf.ValidRequested
	}
	// Candidates are independent; check them on the worker pool and
	// report the first failure in input order, as a sequential run would.
	errs := make([]error, len(cands))
	runParallel(len(cands), func(i int) {
		c := cands[i]
		if !validFn(c.Translation) {
			errs[i] = fmt.Errorf("core: candidate %s is not a valid translation of %s", c, r)
			return
		}
		if viols := CheckCriteria(db, v, r, c.Translation, CheckOptions{Valid: validFn}); len(viols) > 0 {
			errs[i] = fmt.Errorf("core: candidate %s: %v", c, viols[0])
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
