package core

import (
	"fmt"

	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/view"
)

// Effects describes what applying a translation does to a view beyond
// the requested change — the paper's "side effects in the view", which
// are impossible for SP views under the five criteria but inherent to
// some join-view updates ("there are some updates for views involving
// joins that cannot be translated without side effects in the view").
type Effects struct {
	// ExtraAdded holds view rows that appear although the request did
	// not ask for them.
	ExtraAdded *tuple.Set
	// ExtraRemoved holds view rows that disappear although the request
	// did not ask for their removal.
	ExtraRemoved *tuple.Set
}

// None reports whether the translation has no view side effects.
func (e *Effects) None() bool {
	return e.ExtraAdded.Len() == 0 && e.ExtraRemoved.Len() == 0
}

// String renders the effects compactly.
func (e *Effects) String() string {
	if e.None() {
		return "no view side effects"
	}
	return fmt.Sprintf("view side effects: +%d rows, -%d rows", e.ExtraAdded.Len(), e.ExtraRemoved.Len())
}

// SideEffects applies tr to a copy-on-write overlay of db and reports
// the view changes beyond those requested by r. The database itself is
// not modified. An error is returned if the translation cannot be
// applied. For repeated checks against one request, build a Verifier
// and call its SideEffects method.
func SideEffects(db storage.Source, v view.View, r Request, tr *update.Translation) (*Effects, error) {
	return NewVerifier(db, v, r).SideEffects(tr)
}
