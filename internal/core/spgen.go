package core

import (
	"fmt"
	"sort"
	"strings"

	"viewupdate/internal/obs"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

// countCandidates records per-class candidate production. SP class
// labels are a bounded set (I-1, I-2, D-1, D-2, R-1…R-5), so the
// counter cardinality stays small; join-view enumerators count their
// composite prefix separately.
func countCandidates(cands []Candidate) {
	if !obs.Enabled() {
		return
	}
	obs.Add("core.candidates.generated", int64(len(cands)))
	for _, c := range cands {
		obs.Inc("core.candidates.class." + c.Class)
	}
}

// A Candidate is one translation of a view update request, labelled
// with the paper's algorithm class that generated it and the arbitrary
// choices the algorithm made (which distinguish the algorithms within a
// class).
type Candidate struct {
	// Class names the generating algorithm class: "I-1", "I-2", "D-1",
	// "D-2", "R-1" … "R-5", or a composite like
	// "SPJ-I(emp:I-1, dept:R-1)".
	Class string
	// Translation is the database update set.
	Translation *update.Translation
	// Choices records the arbitrary value choices, keyed by attribute
	// name (possibly prefixed by a role such as "old." or a node name).
	Choices map[string]value.Value
}

// String renders the candidate.
func (c Candidate) String() string {
	if len(c.Choices) == 0 {
		return fmt.Sprintf("[%s] %s", c.Class, c.Translation)
	}
	keys := make([]string, 0, len(c.Choices))
	for k := range c.Choices {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + c.Choices[k].String()
	}
	return fmt.Sprintf("[%s; %s] %s", c.Class, strings.Join(parts, ","), c.Translation)
}

// cloneChoices copies a choice map, applying a key prefix.
func cloneChoices(prefix string, in map[string]value.Value) map[string]value.Value {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]value.Value, len(in))
	for k, v := range in {
		out[prefix+k] = v
	}
	return out
}

// mergeChoices merges choice maps with per-map prefixes.
func mergeChoices(ms ...map[string]value.Value) map[string]value.Value {
	var out map[string]value.Value
	for _, m := range ms {
		for k, v := range m {
			if out == nil {
				out = make(map[string]value.Value)
			}
			out[k] = v
		}
	}
	return out
}

// An extension is a base tuple produced by an extend algorithm plus the
// choices that produced it.
type extension struct {
	base    tuple.T
	choices map[string]value.Value
}

// extendInsertAll implements ALGORITHM CLASS EXTEND-INSERT (§4-3): the
// new database tuple takes the view tuple's values on visible
// attributes; each projected-out attribute takes, in turn, every value
// from its set of selecting values (its whole domain when
// non-selecting). One extension per combination.
func extendInsertAll(v *view.SP, u tuple.T) []extension {
	span := obs.StartSpan("core.extend_insert")
	defer span.End()
	base := v.Base()
	free := v.ProjectedOut()
	choicesPerAttr := make([][]value.Value, len(free))
	for i, a := range free {
		choicesPerAttr[i] = v.Selection().SelectingValues(a)
	}
	var out []extension
	vals := make([]value.Value, base.Arity())
	for i, a := range base.Attributes() {
		if uv, ok := u.Get(a.Name); ok {
			vals[i] = uv
		}
	}
	var rec func(i int, choices map[string]value.Value)
	rec = func(i int, choices map[string]value.Value) {
		if i == len(free) {
			cp := make([]value.Value, len(vals))
			copy(cp, vals)
			out = append(out, extension{base: tuple.MustNew(base, cp...), choices: cloneChoices("", choices)})
			return
		}
		idx := base.Index(free[i])
		for _, c := range choicesPerAttr[i] {
			vals[idx] = c
			choices[free[i]] = c
			rec(i+1, choices)
		}
		delete(choices, free[i])
	}
	rec(0, map[string]value.Value{})
	return out
}

// UniqueExtendInsert reports whether the extend-insert algorithm is
// unique for v: "there is a unique extend-insert algorithm iff each
// attribute projected out has a singleton set of selecting values".
func UniqueExtendInsert(v *view.SP) bool {
	for _, a := range v.ProjectedOut() {
		if len(v.Selection().SelectingValues(a)) != 1 {
			return false
		}
	}
	return true
}

// extendI2All enumerates the I-2 rewrites of an existing database tuple
// t so that it appears in the view as u (§4-3): visible attributes are
// changed to match u, and every projected-out attribute currently
// holding an excluding value is changed, in turn, to each of its
// selecting values. Other hidden attributes keep their values.
func extendI2All(v *view.SP, t tuple.T, u tuple.T) []extension {
	span := obs.StartSpan("core.extend_i2")
	defer span.End()
	sel := v.Selection()
	out := []extension{{base: t}}
	// Visible attributes match the view tuple.
	for _, a := range v.Projection().Attributes() {
		uv := u.MustGet(a)
		for i := range out {
			out[i].base = out[i].base.MustWith(a, uv)
		}
	}
	// Hidden selecting attributes with excluding values must flip to a
	// selecting value; enumerate each choice.
	for _, a := range v.ProjectedOut() {
		if !sel.IsSelecting(a) {
			continue
		}
		if sel.Selects(a, t.MustGet(a)) {
			continue
		}
		var next []extension
		for _, e := range out {
			for _, sv := range sel.SelectingValues(a) {
				choices := mergeChoices(e.choices, map[string]value.Value{a: sv})
				next = append(next, extension{base: e.base.MustWith(a, sv), choices: choices})
			}
		}
		out = next
	}
	return out
}

// extendReplace implements ALGORITHM EXTEND-REPLACE (§4-5): replace the
// database tuple, changing the attributes appearing in the view to
// match the new view tuple; hidden attributes keep their values. There
// is only one extend-replace algorithm.
func extendReplace(v *view.SP, base tuple.T, u tuple.T) tuple.T {
	span := obs.StartSpan("core.extend_replace")
	defer span.End()
	out := base
	for _, a := range v.Projection().Attributes() {
		out = out.MustWith(a, u.MustGet(a))
	}
	return out
}

// EnumerateSPInsert returns every candidate translation of the valid
// view insertion of u into v that satisfies the five criteria —
// exactly the algorithms of classes I-1 and I-2. The two classes apply
// to disjoint database states: I-1 when no database tuple carries u's
// key, I-2 when one does.
func EnumerateSPInsert(db storage.Source, v *view.SP, u tuple.T) ([]Candidate, error) {
	if err := ValidateRequest(db, v, InsertRequest(u)); err != nil {
		return nil, err
	}
	if conflicting, ok := v.BaseForKey(db, u); ok {
		// ALGORITHM CLASS I-2: rewrite the hidden conflicting tuple.
		exts := extendI2All(v, conflicting, u)
		out := make([]Candidate, len(exts))
		for i, e := range exts {
			out[i] = Candidate{
				Class:       "I-2",
				Translation: update.NewTranslation(update.NewReplace(conflicting, e.base)),
				Choices:     e.choices,
			}
		}
		countCandidates(out)
		return out, nil
	}
	// ALGORITHM CLASS I-1: insert an extend-insert extension.
	exts := extendInsertAll(v, u)
	out := make([]Candidate, len(exts))
	for i, e := range exts {
		out[i] = Candidate{
			Class:       "I-1",
			Translation: update.NewTranslation(update.NewInsert(e.base)),
			Choices:     e.choices,
		}
	}
	countCandidates(out)
	return out, nil
}

// EnumerateSPDelete returns every candidate translation of the valid
// view deletion of u from v — exactly the algorithms of classes D-1
// (delete the underlying tuple) and D-2 (replace it, flipping one
// non-key selecting attribute to an excluding value). D-2 is empty when
// the selection is "true" or selects only key attributes.
func EnumerateSPDelete(db storage.Source, v *view.SP, u tuple.T) ([]Candidate, error) {
	if err := ValidateRequest(db, v, DeleteRequest(u)); err != nil {
		return nil, err
	}
	base, ok := v.BaseForKey(db, u)
	if !ok {
		return nil, fmt.Errorf("core: no base tuple for %s", u)
	}
	out := []Candidate{{
		Class:       "D-1",
		Translation: update.NewTranslation(update.NewDelete(base)),
	}}
	out = append(out, d2Candidates(v, base)...)
	countCandidates(out)
	return out, nil
}

// d2Candidates builds the D-2 alternatives for removing base from the
// view: one per (non-key selecting attribute, excluding value) pair.
func d2Candidates(v *view.SP, base tuple.T) []Candidate {
	var out []Candidate
	sel := v.Selection()
	for _, a := range sel.SelectingAttributes() {
		if v.Base().IsKey(a) {
			continue
		}
		for _, e := range sel.ExcludingValues(a) {
			flipped := base.MustWith(a, e)
			out = append(out, Candidate{
				Class:       "D-2",
				Translation: update.NewTranslation(update.NewReplace(base, flipped)),
				Choices:     map[string]value.Value{a: e},
			})
		}
	}
	return out
}

// EnumerateSPReplace returns every candidate translation of the valid
// view replacement of old by new in v — exactly the algorithms of
// classes R-1 through R-5 (§4-5):
//
//	key unchanged:                         R-1 (extend-replace)
//	key changes, no hidden key conflict:   R-2 (extend-replace)
//	                                       R-4 (D-2 on old × I-1 on new)
//	key changes, hidden key conflict:      R-3 (I-2 on new + delete old)
//	                                       R-5 (D-2 on old × I-2 on new)
func EnumerateSPReplace(db storage.Source, v *view.SP, old, new tuple.T) ([]Candidate, error) {
	if err := ValidateRequest(db, v, ReplaceRequest(old, new)); err != nil {
		return nil, err
	}
	base1, ok := v.BaseForKey(db, old)
	if !ok {
		return nil, fmt.Errorf("core: no base tuple for %s", old)
	}

	if old.Key() == new.Key() {
		// ALGORITHM CLASS R-1: the only class when the key is unchanged.
		out := []Candidate{{
			Class:       "R-1",
			Translation: update.NewTranslation(update.NewReplace(base1, extendReplace(v, base1, new))),
		}}
		countCandidates(out)
		return out, nil
	}

	var out []Candidate
	d2s := d2Candidates(v, base1)

	if base2, conflict := v.BaseForKey(db, new); conflict {
		// ALGORITHM CLASS R-3: rewrite the hidden conflicting tuple to
		// become the replacement view tuple and delete the replaced one.
		for _, e := range extendI2All(v, base2, new) {
			out = append(out, Candidate{
				Class: "R-3",
				Translation: update.NewTranslation(
					update.NewReplace(base2, e.base),
					update.NewDelete(base1),
				),
				Choices: cloneChoices("new.", e.choices),
			})
		}
		// ALGORITHM CLASS R-5: D-2 the replaced tuple out of the view
		// and rewrite the hidden conflicting tuple.
		for _, d := range d2s {
			for _, e := range extendI2All(v, base2, new) {
				trans := d.Translation.Clone()
				trans.Add(update.NewReplace(base2, e.base))
				out = append(out, Candidate{
					Class:       "R-5",
					Translation: trans,
					Choices:     mergeChoices(cloneChoices("old.", d.Choices), cloneChoices("new.", e.choices)),
				})
			}
		}
		countCandidates(out)
		return out, nil
	}

	// ALGORITHM CLASS R-2: one extend-replace changing the key.
	out = append(out, Candidate{
		Class:       "R-2",
		Translation: update.NewTranslation(update.NewReplace(base1, extendReplace(v, base1, new))),
	})
	// ALGORITHM CLASS R-4: D-2 the replaced tuple out of the view and
	// insert an extend-insert extension of the replacement tuple.
	for _, d := range d2s {
		for _, e := range extendInsertAll(v, new) {
			trans := d.Translation.Clone()
			trans.Add(update.NewInsert(e.base))
			out = append(out, Candidate{
				Class:       "R-4",
				Translation: trans,
				Choices:     mergeChoices(cloneChoices("old.", d.Choices), cloneChoices("new.", e.choices)),
			})
		}
	}
	countCandidates(out)
	return out, nil
}

// EnumerateSP dispatches on the request kind.
func EnumerateSP(db storage.Source, v *view.SP, r Request) ([]Candidate, error) {
	span := obs.StartSpan("core.sp.generate")
	defer span.End()
	var cands []Candidate
	var err error
	switch r.Kind {
	case update.Insert:
		cands, err = EnumerateSPInsert(db, v, r.Tuple)
	case update.Delete:
		cands, err = EnumerateSPDelete(db, v, r.Tuple)
	case update.Replace:
		cands, err = EnumerateSPReplace(db, v, r.Old, r.New)
	default:
		return nil, fmt.Errorf("core: invalid request kind")
	}
	if err != nil {
		obs.Inc("core.sp.generate.error")
		return nil, err
	}
	return cands, nil
}
