package core

import (
	"fmt"
	"sort"

	"viewupdate/internal/obs"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/view"
)

// A Trace is the "explain" artifact of one view update translation: it
// records, candidate by candidate, what the pipeline considered and why
// each alternative was accepted or discarded — the inspectable form of
// the paper's derivation, where the five criteria of §3 carve the
// acceptable translations out of the naive update space.
//
// Two kinds of candidates appear. Generator candidates come from the
// complete enumerators (classes I-1/I-2, D-1/D-2, R-1…R-5 and their
// SPJ compositions); the theorems of §4–§5 guarantee they satisfy the
// criteria, and the trace re-verifies each one. Probe candidates are
// nearby naive alternatives (split replacements, unions of candidates,
// widened replacements, extra unmentioned operations) that the
// generators never emit precisely because a criterion rejects them;
// they are included so the trace shows each criterion doing its work.
type Trace struct {
	// View and Request identify the traced translation.
	View    string `json:"view"`
	Request string `json:"request"`
	// Policy names the policy that chose among the accepted candidates.
	Policy string `json:"policy"`
	// Exact records the validity notion used: exact view equality for
	// SP views, requested-changes-only for join views.
	Exact bool `json:"exact_validity"`
	// Phases times the pipeline stages (enumerate, criteria, probes,
	// policy) in nanoseconds.
	Phases []TracePhase `json:"phases,omitempty"`
	// Candidates lists every considered translation with its verdict.
	Candidates []TraceCandidate `json:"candidates"`
	// ChosenIndex is the index into Candidates of the policy's pick, or
	// -1 when translation failed.
	ChosenIndex int `json:"chosen_index"`
	// Err records an enumeration or policy failure, empty on success.
	Err string `json:"error,omitempty"`
}

// TracePhase is one timed pipeline stage.
type TracePhase struct {
	Name  string `json:"name"`
	Nanos int64  `json:"nanos"`
}

// Verdicts of a traced candidate.
const (
	VerdictAccepted = "accepted" // valid and satisfies all five criteria
	VerdictInvalid  = "invalid"  // not a valid translation of the request
	VerdictRejected = "rejected" // valid but violates a criterion
)

// A TraceCandidate is one considered translation and its fate.
type TraceCandidate struct {
	// Source is "generator" for enumerator output, "probe" for a naive
	// alternative synthesized to exhibit a criterion rejection.
	Source string `json:"source"`
	// Class is the algorithm class ("D-1", "SPJ-I(…)") or the probe's
	// derivation label ("split(D-2)", "union(D-1,D-2)").
	Class string `json:"class"`
	// Translation is the rendered database update set.
	Translation string `json:"translation"`
	// Choices renders the arbitrary value choices as sorted "attr=value"
	// strings.
	Choices []string `json:"choices,omitempty"`
	// Verdict is one of the Verdict* constants.
	Verdict string `json:"verdict"`
	// RejectedBy is the first violated criterion (1–5) when Verdict is
	// "rejected", 0 otherwise.
	RejectedBy int `json:"rejected_by,omitempty"`
	// Detail explains the verdict (the violation text, or why the
	// translation is invalid).
	Detail string `json:"detail,omitempty"`
	// Chosen marks the candidate the policy selected.
	Chosen bool `json:"chosen,omitempty"`
}

// Accepted returns the indices of accepted candidates.
func (t *Trace) Accepted() []int {
	var out []int
	for i, c := range t.Candidates {
		if c.Verdict == VerdictAccepted {
			out = append(out, i)
		}
	}
	return out
}

// Rejections counts rejected candidates per criterion (key 1..5).
func (t *Trace) Rejections() map[int]int {
	out := map[int]int{}
	for _, c := range t.Candidates {
		if c.Verdict == VerdictRejected {
			out[c.RejectedBy]++
		}
	}
	return out
}

// TraceOptions parameterizes TraceTranslate.
type TraceOptions struct {
	// Probes, when true, synthesizes naive rejected alternatives so the
	// trace exhibits the criteria at work. TranslateTraced sets it.
	Probes bool
	// MaxProbes bounds the number of probe candidates (default 8).
	MaxProbes int
}

// choiceStrings renders a candidate's choices as sorted "k=v" pairs.
func choiceStrings(c Candidate) []string {
	if len(c.Choices) == 0 {
		return nil
	}
	out := make([]string, 0, len(c.Choices))
	for k, v := range c.Choices {
		out = append(out, k+"="+v.String())
	}
	sort.Strings(out)
	return out
}

// TranslateTraced translates the request like Translate and
// additionally returns the full explain trace. It is strictly more
// expensive than Translate — every candidate is re-verified against the
// five criteria and naive probe alternatives are synthesized and judged
// — so it is meant for inspection, debugging and the -explain mode of
// the CLI, not for hot paths.
func (t *Translator) TranslateTraced(db storage.Source, r Request) (Candidate, *Trace, error) {
	return TraceTranslate(db, t.View, t.Policy, r, TraceOptions{Probes: true})
}

// TraceTranslate runs the traced pipeline: enumerate, verify each
// candidate against validity and the five criteria, synthesize and
// judge probe alternatives, then let the policy choose. The database is
// read, not modified. The returned error mirrors Translate's; the trace
// is non-nil even on failure and records what happened.
func TraceTranslate(db storage.Source, v view.View, p Policy, r Request, opts TraceOptions) (Candidate, *Trace, error) {
	if p == nil {
		p = PickFirst{}
	}
	if opts.MaxProbes == 0 {
		opts.MaxProbes = 8
	}
	_, isJoin := v.(*view.Join)
	tr := &Trace{
		View:        v.Name(),
		Request:     r.String(),
		Policy:      p.Name(),
		Exact:       !isJoin,
		ChosenIndex: -1,
	}
	span := obs.StartSpan("core.trace.translate")
	defer span.End()

	phase := func(name string, f func()) {
		sp := obs.StartSpan("core.trace." + name)
		f()
		tr.Phases = append(tr.Phases, TracePhase{Name: name, Nanos: int64(sp.End())})
	}

	var cands []Candidate
	var enumErr error
	phase("enumerate", func() {
		cands, enumErr = Enumerate(db, v, r)
	})
	if enumErr != nil {
		tr.Err = enumErr.Error()
		return Candidate{}, tr, enumErr
	}

	// One verifier for the whole request: the view and the requested
	// view state are materialized once, candidates are judged against
	// copy-on-write overlays. The verifier is immutable, so judging is
	// safe to parallelize.
	vf := NewVerifier(db, v, r)
	validFn := vf.ValidFn()

	judge := func(c Candidate, source string) TraceCandidate {
		tc := TraceCandidate{
			Source:      source,
			Class:       c.Class,
			Translation: c.Translation.String(),
			Choices:     choiceStrings(c),
		}
		if !validFn(c.Translation) {
			tc.Verdict = VerdictInvalid
			tc.Detail = "not a valid translation of the request"
			return tc
		}
		viols := CheckCriteria(db, v, r, c.Translation, CheckOptions{Valid: validFn})
		if len(viols) == 0 {
			tc.Verdict = VerdictAccepted
			return tc
		}
		tc.Verdict = VerdictRejected
		tc.RejectedBy = viols[0].Criterion
		tc.Detail = viols[0].Detail
		return tc
	}

	// Candidates are judged on a bounded worker pool; results land in
	// their candidate's slot, and the trace appends them in enumeration
	// order, so the output is byte-identical to a sequential run.
	//
	// acceptedIdx maps trace indices back into cands for the policy.
	var acceptedIdx []int
	phase("criteria", func() {
		judged := make([]TraceCandidate, len(cands))
		runParallel(len(cands), func(i int) {
			judged[i] = judge(cands[i], "generator")
		})
		for i, tc := range judged {
			tr.Candidates = append(tr.Candidates, tc)
			if tc.Verdict == VerdictAccepted {
				acceptedIdx = append(acceptedIdx, i)
			}
		}
	})

	if opts.Probes {
		phase("probes", func() {
			probes := buildProbes(db, v, r, cands, opts.MaxProbes)
			judged := make([]TraceCandidate, len(probes))
			runParallel(len(probes), func(i int) {
				judged[i] = judge(probes[i], "probe")
			})
			tr.Candidates = append(tr.Candidates, judged...)
		})
	}

	accepted := make([]Candidate, len(acceptedIdx))
	for i, idx := range acceptedIdx {
		accepted[i] = cands[idx]
	}
	var chosen Candidate
	var chooseErr error
	phase("policy", func() {
		chosen, chooseErr = p.Choose(r, accepted)
	})
	if chooseErr != nil {
		tr.Err = chooseErr.Error()
		return Candidate{}, tr, chooseErr
	}
	for i := range tr.Candidates {
		tc := &tr.Candidates[i]
		if tc.Source == "generator" && tc.Verdict == VerdictAccepted &&
			tc.Class == chosen.Class && tc.Translation == chosen.Translation.String() {
			tc.Chosen = true
			tr.ChosenIndex = i
			break
		}
	}
	return chosen, tr, nil
}

// buildProbes synthesizes naive alternative translations in the
// neighborhood of the generator candidates — the translations a naive
// algorithm might produce and that the criteria of §3 reject:
//
//   - split(C): a replacement of C performed as delete+insert
//     (criterion 5: no delete-insert pairs per relation; for requests
//     without an added side, criterion 1 fires first);
//   - union(C1,C2): two candidates combined, touching the same base
//     tuple twice (criterion 2: only one-step changes) or inserting
//     conflicting tuples (invalid);
//   - widen(C): a replacement of C that also changes an attribute the
//     view update does not require (criterion 4: replacements must not
//     be simplifiable);
//   - extra(C): a candidate plus the deletion of an unrelated, view-
//     invisible tuple (criterion 1: no database side effects).
//
// Probes are deterministic and bounded by maxProbes.
func buildProbes(db storage.Source, v view.View, r Request, cands []Candidate, maxProbes int) []Candidate {
	var out []Candidate
	add := func(c Candidate) bool {
		if len(out) >= maxProbes {
			return false
		}
		out = append(out, c)
		return true
	}

	// split: every replacement becomes a delete-insert pair.
	for _, c := range cands {
		reps := c.Translation.Replacements()
		if len(reps) == 0 {
			continue
		}
		split := update.NewTranslation()
		for _, o := range c.Translation.Ops() {
			if o.Kind == update.Replace {
				split.Add(update.NewDelete(o.Old))
				split.Add(update.NewInsert(o.New))
			} else {
				split.Add(o)
			}
		}
		if !add(Candidate{Class: "split(" + c.Class + ")", Translation: split}) {
			return out
		}
		break // one split probe suffices
	}

	// union: combine the first two distinct candidates.
	for i := 0; i < len(cands) && i < 2; i++ {
		for j := i + 1; j < len(cands); j++ {
			if cands[i].Translation.Equal(cands[j].Translation) {
				continue
			}
			u := cands[i].Translation.Clone()
			u.AddAll(cands[j].Translation)
			if !add(Candidate{
				Class:       "union(" + cands[i].Class + "," + cands[j].Class + ")",
				Translation: u,
			}) {
				return out
			}
			j = len(cands) // only the first partner per i
		}
	}

	// widen: change one extra attribute in a replacement's new tuple.
	for _, c := range cands {
		probe, ok := widenReplacement(c)
		if !ok {
			continue
		}
		if !add(probe) {
			return out
		}
		break
	}

	// extra: append the deletion of a view-invisible, unmentioned tuple.
	if vic, ok := invisibleVictim(db, v, r); ok {
		for _, c := range cands {
			extra := c.Translation.Clone()
			extra.Add(update.NewDelete(vic))
			if !add(Candidate{Class: "extra(" + c.Class + ")", Translation: extra}) {
				return out
			}
			break
		}
	}
	return out
}

// widenReplacement derives a probe from c's first replacement by also
// flipping one attribute that the replacement leaves unchanged (a
// non-key attribute, to keep the op plausible).
func widenReplacement(c Candidate) (Candidate, bool) {
	for _, op := range c.Translation.Replacements() {
		rel := op.Old.Relation()
		for _, a := range rel.NonKeyAttributes() {
			if op.Old.MustGet(a) != op.New.MustGet(a) {
				continue // already changed
			}
			attr, _ := rel.Attribute(a)
			for _, val := range attr.Domain.Values() {
				if val == op.New.MustGet(a) {
					continue
				}
				widened := update.NewTranslation()
				for _, o := range c.Translation.Ops() {
					if o.Encode() == op.Encode() {
						widened.Add(update.NewReplace(op.Old, op.New.MustWith(a, val)))
					} else {
						widened.Add(o)
					}
				}
				return Candidate{Class: "widen(" + c.Class + ")", Translation: widened}, true
			}
		}
	}
	return Candidate{}, false
}

// invisibleVictim finds a deterministic database tuple that is neither
// visible in the view nor mentioned (by key) in the request — deleting
// it is the classic criterion-1 violation (a database side effect the
// view user never asked for).
func invisibleVictim(db storage.Source, v view.View, r Request) (tuple.T, bool) {
	mentioned := r.Mentioned()
	for _, sp := range relationsOf(v) {
		for _, t := range db.Tuples(sp.Base().Name()) {
			if anyKeyMatch(mentioned, t) {
				continue
			}
			if tupleVisible(v, t) {
				continue
			}
			return t, true
		}
	}
	return tuple.T{}, false
}

// relationsOf lists the base relations of a view.
func relationsOf(v view.View) []*view.SP {
	switch vv := v.(type) {
	case *view.SP:
		return []*view.SP{vv}
	case *view.Join:
		out := make([]*view.SP, len(vv.Nodes()))
		for i, n := range vv.Nodes() {
			out[i] = n.SP
		}
		return out
	}
	return nil
}

// tupleVisible reports whether deleting t could change the view: for SP
// nodes this is whether t satisfies the node's selection.
func tupleVisible(v view.View, t tuple.T) bool {
	switch vv := v.(type) {
	case *view.SP:
		return vv.Selection().Matches(t)
	case *view.Join:
		for _, n := range vv.Nodes() {
			if n.SP.Base() == t.Relation() && n.SP.Selection().Matches(t) {
				return true
			}
		}
	}
	return false
}

// String renders a one-line summary of the trace.
func (t *Trace) String() string {
	acc := len(t.Accepted())
	return fmt.Sprintf("trace(%s on %s: %d candidates, %d accepted, chosen %d)",
		t.Request, t.View, len(t.Candidates), acc, t.ChosenIndex)
}
