package core

import (
	"fmt"

	"viewupdate/internal/obs"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

// Valid implements the paper's validity notion for SP views: a
// translation is valid if applying it to the database yields exactly
// the requested view state — V(DB′) = U(V(DB)), no view side effects.
// It returns false both when the translation cannot be applied (absent
// tuples, key conflicts, constraint violations) and when the resulting
// view differs from the requested one.
//
// Checking many translations for one request? Build one Verifier and
// use its Valid method — this convenience re-materializes the view per
// call.
func Valid(db storage.Source, v view.View, r Request, tr *update.Translation) bool {
	return NewVerifier(db, v, r).Valid(tr)
}

// ValidRequested implements the relaxed validity applicable to join
// views, which "may have update translators with side effects in the
// view": the requested tuples must change as asked (added tuples
// present, removed tuples absent afterwards), while other view rows may
// change. As with Valid, prefer a Verifier for repeated checks.
func ValidRequested(db storage.Source, v view.View, r Request, tr *update.Translation) bool {
	return NewVerifier(db, v, r).ValidRequested(tr)
}

// A Violation reports that a translation breaks one of the five
// criteria.
type Violation struct {
	Criterion int // 1..5
	Detail    string
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("criterion %d violated: %s", v.Criterion, v.Detail)
}

// CheckOptions parameterizes criteria checking.
type CheckOptions struct {
	// Valid decides validity of an alternative translation; criteria 3
	// and 4 quantify over alternatives. If nil, criteria 3 and 4 are
	// checked with core.Valid (exact view semantics).
	Valid func(tr *update.Translation) bool
	// MaxAlternativeSpace bounds the number of alternative replacement
	// tuples criterion 4 may enumerate per replace op; 0 means 4096.
	MaxAlternativeSpace int
}

// CheckCriteria evaluates the five criteria of §3 on a candidate
// translation for request r against view v over db. The returned slice
// is empty iff the translation satisfies all five criteria. Validity
// itself is a precondition, not one of the criteria; callers usually
// check Valid first.
func CheckCriteria(db storage.Source, v view.View, r Request, tr *update.Translation, opts CheckOptions) []Violation {
	span := obs.StartSpan("core.criteria.check")
	defer span.End()
	obs.Inc("core.criteria.checked")
	var out []Violation
	valid := opts.Valid
	if valid == nil {
		valid = NewVerifier(db, v, r).Valid
	}
	if viol := checkCriterion1(v, r, tr); viol != nil {
		out = append(out, *viol)
	}
	if viol := checkCriterion2(tr); viol != nil {
		out = append(out, *viol)
	}
	if viol := checkCriterion3(tr, valid); viol != nil {
		out = append(out, *viol)
	}
	if viol := checkCriterion4(tr, valid, opts.MaxAlternativeSpace); viol != nil {
		out = append(out, *viol)
	}
	if viol := checkCriterion5(tr); viol != nil {
		out = append(out, *viol)
	}
	if len(out) == 0 {
		obs.Inc("core.criteria.pass")
	} else {
		for _, viol := range out {
			countViolation(viol.Criterion)
		}
	}
	return out
}

// countViolation bumps the per-criterion rejection counter. The metric
// names are constants so the disabled and enabled paths alike avoid
// building strings.
func countViolation(criterion int) {
	switch criterion {
	case 1:
		obs.Inc("core.criteria.reject.1")
	case 2:
		obs.Inc("core.criteria.reject.2")
	case 3:
		obs.Inc("core.criteria.reject.3")
	case 4:
		obs.Inc("core.criteria.reject.4")
	case 5:
		obs.Inc("core.criteria.reject.5")
	}
}

// keyMatches reports whether the view tuple u carries relation rel's
// key values equal to those of the database tuple t. The criterion
// presupposes "the key of each relation affected appears in the view";
// if u lacks a key attribute the match fails.
func keyMatches(u tuple.T, rel *schema.Relation, t tuple.T) bool {
	for _, k := range rel.Key() {
		uv, ok := u.Get(k)
		if !ok {
			return false
		}
		if uv != t.MustGet(k) {
			return false
		}
	}
	return true
}

func anyKeyMatch(us []tuple.T, t tuple.T) bool {
	rel := t.Relation()
	for _, u := range us {
		if keyMatches(u, rel, t) {
			return true
		}
	}
	return false
}

// checkCriterion1 implements "no database side effects": every affected
// database tuple's key matches the respective values in the tuples
// mentioned in the view update request — removed-side request tuples
// authorize removed-side keys, added-side request tuples authorize
// added-side keys, and a key-preserving replacement may match either
// side ("if the key of a tuple changes, the old and new keys must
// appear in the respective positions of the view update request").
func checkCriterion1(v view.View, r Request, tr *update.Translation) *Violation {
	added := r.AddedTuples()
	removed := r.RemovedTuples()
	all := r.Mentioned()
	for _, o := range tr.Ops() {
		switch o.Kind {
		case update.Insert:
			if !anyKeyMatch(added, o.Tuple) {
				return &Violation{1, fmt.Sprintf("inserted tuple %s has a key not mentioned on the request's added side", o.Tuple)}
			}
		case update.Delete:
			if !anyKeyMatch(removed, o.Tuple) {
				return &Violation{1, fmt.Sprintf("deleted tuple %s has a key not mentioned on the request's removed side", o.Tuple)}
			}
		case update.Replace:
			if o.Old.Key() == o.New.Key() {
				if !anyKeyMatch(all, o.Old) {
					return &Violation{1, fmt.Sprintf("replaced tuple %s has a key not mentioned in the request", o.Old)}
				}
			} else {
				if !anyKeyMatch(removed, o.Old) {
					return &Violation{1, fmt.Sprintf("key-changing replacement's old tuple %s not matched on the removed side", o.Old)}
				}
				if !anyKeyMatch(added, o.New) {
					return &Violation{1, fmt.Sprintf("key-changing replacement's new tuple %s not matched on the added side", o.New)}
				}
			}
		}
	}
	return nil
}

// checkCriterion2 implements "only one-step changes": "each database
// tuple is affected by at most one step of the translation". An
// insertion or deletion affects its tuple; a replacement affects both
// the replaced and the replacement tuple. Any tuple touched by two
// different steps — a replaced inserted tuple, a deleted replacement, a
// tuple replaced twice, chained replacements, and so on — violates the
// criterion.
func checkCriterion2(tr *update.Translation) *Violation {
	affected := map[string]update.Op{}
	touch := func(t tuple.T, o update.Op) *Violation {
		enc := t.Encode()
		if prev, dup := affected[enc]; dup {
			return &Violation{2, fmt.Sprintf("tuple %s is affected by two steps: %s and %s", t, prev, o)}
		}
		affected[enc] = o
		return nil
	}
	for _, o := range tr.Ops() {
		switch o.Kind {
		case update.Insert, update.Delete:
			if v := touch(o.Tuple, o); v != nil {
				return v
			}
		case update.Replace:
			if v := touch(o.Old, o); v != nil {
				return v
			}
			if !o.New.Equal(o.Old) {
				if v := touch(o.New, o); v != nil {
					return v
				}
			}
		}
	}
	return nil
}

// checkCriterion3 implements "minimal change: no unnecessary changes":
// no valid translation performs only a proper subset of the database
// requests.
func checkCriterion3(tr *update.Translation, valid func(*update.Translation) bool) *Violation {
	for _, sub := range tr.ProperSubsets() {
		if valid(sub) {
			return &Violation{3, fmt.Sprintf("proper subset %s is already a valid translation", sub)}
		}
	}
	return nil
}

// checkCriterion4 implements "minimal change: replacements cannot be
// simplified": no replacement in the translation can be swapped for a
// simpler replacement of the same tuple — one that does not change the
// key while the original does, or one that makes the same changes on a
// proper subset of the changed attributes — while keeping the
// translation valid.
func checkCriterion4(tr *update.Translation, valid func(*update.Translation) bool, maxSpace int) *Violation {
	if maxSpace <= 0 {
		maxSpace = 4096
	}
	for _, op := range tr.Replacements() {
		for _, alt := range simplerReplacements(op, maxSpace) {
			cand := update.NewTranslation()
			for _, o := range tr.Ops() {
				if o.Encode() != op.Encode() {
					cand.Add(o)
				}
			}
			cand.Add(alt)
			if valid(cand) {
				return &Violation{4, fmt.Sprintf("replacement %s can be simplified to %s", op, alt)}
			}
		}
	}
	return nil
}

// changedAttrs returns the attributes where old and new differ.
func changedAttrs(old, new tuple.T) []string {
	var out []string
	for _, a := range old.Relation().Attributes() {
		if old.MustGet(a.Name) != new.MustGet(a.Name) {
			out = append(out, a.Name)
		}
	}
	return out
}

// keyChanges reports whether a replacement changes the key.
func keyChanges(old, new tuple.T) bool { return old.Key() != new.Key() }

// SimplerReplacements enumerates replacement ops of the same tuple that
// are simpler than op per §3's criterion 4:
//
//  1. same changes on a proper non-empty subset of the changed
//     attributes;
//  2. if op changes the key: any replacement keeping the key, obtained
//     by varying non-key attributes over their domains (bounded by
//     maxSpace alternatives; 0 means 4096).
//
// It is used by the criterion-4 checker and by the oracle's
// simplification-chain search.
func SimplerReplacements(op update.Op, maxSpace int) []update.Op {
	if maxSpace <= 0 {
		maxSpace = 4096
	}
	return simplerReplacements(op, maxSpace)
}

func simplerReplacements(op update.Op, maxSpace int) []update.Op {
	var out []update.Op
	old := op.Old
	changed := changedAttrs(old, op.New)
	// Proper non-empty subsets of the changed attributes, same values.
	n := len(changed)
	if n > 1 && n <= 16 {
		for mask := 1; mask < (1<<n)-1; mask++ {
			t := old
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					t = t.MustWith(changed[i], op.New.MustGet(changed[i]))
				}
			}
			out = append(out, update.NewReplace(old, t))
		}
	}
	if keyChanges(old, op.New) {
		// Any key-preserving replacement is simpler. Enumerate the
		// non-key attribute space up to maxSpace alternatives.
		rel := old.Relation()
		nonKey := rel.NonKeyAttributes()
		space := 1
		for _, a := range nonKey {
			attr, _ := rel.Attribute(a)
			space *= attr.Domain.Size()
			if space > maxSpace {
				space = maxSpace + 1
				break
			}
		}
		if space <= maxSpace {
			alts := enumerateAssignments(rel, nonKey)
			for _, vals := range alts {
				t := old
				for i, a := range nonKey {
					t = t.MustWith(a, vals[i])
				}
				if !t.Equal(old) {
					out = append(out, update.NewReplace(old, t))
				}
			}
		}
	}
	return out
}

// enumerateAssignments yields every assignment of domain values to the
// named attributes of rel, in deterministic order.
func enumerateAssignments(rel *schema.Relation, attrs []string) [][]value.Value {
	if len(attrs) == 0 {
		return [][]value.Value{nil}
	}
	domains := make([][]value.Value, len(attrs))
	for i, a := range attrs {
		attr, ok := rel.Attribute(a)
		if !ok {
			panic(fmt.Sprintf("core: attribute %s not in %s", a, rel.Name()))
		}
		domains[i] = attr.Domain.Values()
	}
	var out [][]value.Value
	cur := make([]value.Value, len(attrs))
	var rec func(i int)
	rec = func(i int) {
		if i == len(attrs) {
			cp := make([]value.Value, len(cur))
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		for _, v := range domains[i] {
			cur[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// checkCriterion5 implements "minimal change: no delete-insert pairs":
// a candidate translation may contain deletions or insertions for any
// one relation, but not both.
func checkCriterion5(tr *update.Translation) *Violation {
	hasDel := map[string]bool{}
	hasIns := map[string]bool{}
	for _, o := range tr.Ops() {
		switch o.Kind {
		case update.Delete:
			hasDel[o.RelationName()] = true
		case update.Insert:
			hasIns[o.RelationName()] = true
		}
	}
	for rel := range hasDel {
		if hasIns[rel] {
			return &Violation{5, fmt.Sprintf("relation %s has both deletions and insertions (convertible to a replacement)", rel)}
		}
	}
	return nil
}
