package core

import (
	"strings"
	"testing"

	"viewupdate/internal/fixtures"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

func TestBatchDisjointViews(t *testing.T) {
	f := fixtures.NewABCXD()
	db := storage.Open(f.Schema)
	if err := db.LoadAll(
		f.ABTuple("a", 1), f.ABTuple("a2", 2), f.CXDTuple("c1", "a", 3),
	); err != nil {
		t.Fatal(err)
	}
	v1 := view.Identity("V1", f.CXD)
	v2 := view.Identity("V2", f.AB)
	u1 := tuple.MustNew(v1.Schema(), value.NewString("c1"), value.NewString("a"), value.NewInt(3))
	old2 := tuple.MustNew(v2.Schema(), value.NewString("a2"), value.NewInt(2))
	new2 := tuple.MustNew(v2.Schema(), value.NewString("a2"), value.NewInt(1))

	before1 := v1.Materialize(db)
	before2 := v2.Materialize(db)

	chosen, err := ApplyBatch(db, []BatchItem{
		{View: v1, Request: DeleteRequest(u1)},
		{View: v2, Request: ReplaceRequest(old2, new2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 2 {
		t.Fatalf("want 2 choices, got %d", len(chosen))
	}
	want1, err := DeleteRequest(u1).ApplyToViewSet(before1)
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Materialize(db).Equal(want1) {
		t.Fatal("V1 did not change exactly")
	}
	want2, err := ReplaceRequest(old2, new2).ApplyToViewSet(before2)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Materialize(db).Equal(want2) {
		t.Fatal("V2 did not change exactly")
	}
}

func TestBatchRejectsOverlappingViews(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	u17 := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	u14 := f.ViewTuple(f.ViewB, 14, "Frank", "San Francisco", true)
	_, _, err := TranslateBatch(db, []BatchItem{
		{View: f.ViewP, Request: DeleteRequest(u17)},
		{View: f.ViewB, Request: DeleteRequest(u14)},
	})
	if err == nil || !strings.Contains(err.Error(), "both touch relation EMP") {
		t.Fatalf("overlapping views should be rejected, got %v", err)
	}
}

func TestBatchAtomicity(t *testing.T) {
	f := fixtures.NewABCXD()
	db := storage.Open(f.Schema)
	if err := db.LoadAll(f.ABTuple("a", 1), f.CXDTuple("c1", "a", 3)); err != nil {
		t.Fatal(err)
	}
	v1 := view.Identity("V1", f.CXD)
	v2 := view.Identity("V2", f.AB)
	// Item 1 is fine; item 2's request is invalid (absent row).
	u1 := tuple.MustNew(v1.Schema(), value.NewString("c1"), value.NewString("a"), value.NewInt(3))
	ghost := tuple.MustNew(v2.Schema(), value.NewString("a2"), value.NewInt(2))
	snapshot := db.Clone()
	_, err := ApplyBatch(db, []BatchItem{
		{View: v1, Request: DeleteRequest(u1)},
		{View: v2, Request: DeleteRequest(ghost)},
	})
	if err == nil {
		t.Fatal("batch with an invalid item should fail")
	}
	if !db.Equal(snapshot) {
		t.Fatal("failed batch must not change the database")
	}
}

func TestBatchValidation(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	if _, _, err := TranslateBatch(db, nil); err == nil {
		t.Fatal("empty batch should fail")
	}
	if _, _, err := TranslateBatch(db, []BatchItem{{}}); err == nil {
		t.Fatal("nil view should fail")
	}
	// Ambiguity inside an item propagates.
	u17 := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	_, _, err := TranslateBatch(db, []BatchItem{
		{View: f.ViewP, Request: DeleteRequest(u17), Policy: RejectAmbiguous{}},
	})
	if err == nil {
		t.Fatal("ambiguous item under RejectAmbiguous should fail")
	}
}

// TestBatchWithJoinView: the composition lemma applies when one item is
// a join view, as long as its base relations are disjoint from the
// other items'.
func TestBatchWithJoinView(t *testing.T) {
	// One schema holding the AB/CXD pair plus an unrelated STATUS
	// relation carrying an SP view.
	aDom, err := schema.IntRangeDomain("BA", 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	ab := schema.MustRelation("AB", []schema.Attribute{
		{Name: "A", Domain: aDom},
		{Name: "B", Domain: aDom},
	}, []string{"A"})
	cxd := schema.MustRelation("CXD", []schema.Attribute{
		{Name: "C", Domain: aDom},
		{Name: "X", Domain: aDom},
	}, []string{"C"})
	status := schema.MustRelation("STATUS", []schema.Attribute{
		{Name: "SK", Domain: aDom},
		{Name: "SV", Domain: aDom},
	}, []string{"SK"})
	sch := schema.NewDatabase()
	for _, r := range []*schema.Relation{ab, cxd, status} {
		if err := sch.AddRelation(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sch.AddInclusion(schema.InclusionDependency{Child: "CXD", ChildAttrs: []string{"X"}, Parent: "AB"}); err != nil {
		t.Fatal(err)
	}
	parent := &view.Node{SP: view.Identity("ABv", ab)}
	root := &view.Node{SP: view.Identity("CXDv", cxd), Refs: []view.Ref{{Attrs: []string{"X"}, Target: parent}}}
	jv, err := view.NewJoin("J", sch, root)
	if err != nil {
		t.Fatal(err)
	}
	sv := view.Identity("S", status)

	db := storage.Open(sch)
	if err := db.LoadAll(
		tuple.MustNew(ab, value.NewInt(1), value.NewInt(2)),
		tuple.MustNew(cxd, value.NewInt(3), value.NewInt(1)),
		tuple.MustNew(status, value.NewInt(7), value.NewInt(8)),
	); err != nil {
		t.Fatal(err)
	}

	// Item 1: join-view insert; item 2: SP delete on STATUS.
	ju := MustRow(jv.Schema(), 4, 5, 5, 6)
	su := MustRow(sv.Schema(), 7, 8)
	chosen, err := ApplyBatch(db, []BatchItem{
		{View: jv, Request: InsertRequest(ju)},
		{View: sv, Request: DeleteRequest(su)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 2 {
		t.Fatalf("want 2 choices, got %d", len(chosen))
	}
	if !jv.Materialize(db).Contains(ju) {
		t.Fatal("join insert missing")
	}
	if db.Len("STATUS") != 0 {
		t.Fatal("status delete missing")
	}
	// Overlap detection catches the join view's relations too.
	_, _, err = TranslateBatch(db, []BatchItem{
		{View: jv, Request: DeleteRequest(ju)},
		{View: view.Identity("AB2", ab), Request: DeleteRequest(MustRow(ab, 1, 2))},
	})
	if err == nil {
		t.Fatal("join view sharing AB should be rejected")
	}
}
