package core

import (
	"fmt"

	"viewupdate/internal/storage"
	"viewupdate/internal/update"
	"viewupdate/internal/view"
)

// A BatchItem is one view update inside a multi-view batch.
type BatchItem struct {
	// View receives the request.
	View view.View
	// Request is the single-tuple update.
	Request Request
	// Policy chooses among the item's candidates (nil = PickFirst).
	Policy Policy
}

// baseRelations lists the base relation names a view reads.
func baseRelations(v view.View) []string {
	switch vv := v.(type) {
	case *view.SP:
		return []string{vv.Base().Name()}
	case *view.Join:
		var out []string
		for _, n := range vv.Nodes() {
			out = append(out, n.SP.Base().Name())
		}
		return out
	default:
		return nil
	}
}

// TranslateBatch translates a set of view updates whose views read
// pairwise-disjoint base relations (the §5-3 lemma's condition: "each
// underlying relation is referenced in only one of the views") and
// returns the union translation together with the per-item choices.
// The lemma guarantees the union collectively satisfies the five
// criteria when each part does.
func TranslateBatch(db storage.Source, items []BatchItem) (*update.Translation, []Candidate, error) {
	if len(items) == 0 {
		return nil, nil, fmt.Errorf("core: empty batch")
	}
	owner := map[string]int{}
	for i, it := range items {
		if it.View == nil {
			return nil, nil, fmt.Errorf("core: batch item %d has no view", i)
		}
		for _, rel := range baseRelations(it.View) {
			if j, clash := owner[rel]; clash && j != i {
				return nil, nil, fmt.Errorf("core: batch items %d and %d both touch relation %s (the composition lemma requires disjoint relations)", j, i, rel)
			}
			owner[rel] = i
		}
	}
	union := update.NewTranslation()
	chosen := make([]Candidate, len(items))
	for i, it := range items {
		p := it.Policy
		if p == nil {
			p = PickFirst{}
		}
		cands, err := Enumerate(db, it.View, it.Request)
		if err != nil {
			return nil, nil, fmt.Errorf("core: batch item %d: %w", i, err)
		}
		c, err := p.Choose(it.Request, cands)
		if err != nil {
			return nil, nil, fmt.Errorf("core: batch item %d: %w", i, err)
		}
		chosen[i] = c
		union.AddAll(c.Translation)
	}
	return union, chosen, nil
}

// ApplyBatch translates the batch and applies the union atomically:
// either every view changes as requested or nothing changes.
func ApplyBatch(db *storage.Database, items []BatchItem) ([]Candidate, error) {
	union, chosen, err := TranslateBatch(db, items)
	if err != nil {
		return nil, err
	}
	if err := db.Apply(union); err != nil {
		return nil, fmt.Errorf("core: applying batch %s: %w", union, err)
	}
	return chosen, nil
}
