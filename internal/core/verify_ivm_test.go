package core

import (
	"math/rand"
	"testing"

	"viewupdate/internal/fixtures"
	"viewupdate/internal/obs"
)

// metricsSink installs a fresh obs registry for the test and returns
// it, so counter deltas can prove which verifier path ran.
func metricsSink(t *testing.T) *obs.Sink {
	t.Helper()
	s := obs.NewSink(nil)
	obs.Enable(s)
	t.Cleanup(obs.Disable)
	return s
}

// TestVerifierJoinNeverMaterializes re-runs the join half of the
// Overlay ≡ Clone property with metrics on and asserts the acceptance
// criterion of the IVM layer: candidates touching non-root relations
// go through Join.DeltaForChange (core.verify.ivm), and the verifier's
// full-materialization fallback (core.verify.materialize) fires zero
// times — it remains only for view classes without a delta form.
func TestVerifierJoinNeverMaterializes(t *testing.T) {
	sink := metricsSink(t)
	u := fixtures.NewUniversity(6)
	checked := 0
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randUniversityDB(t, u, rng)
		for i := 0; i < 8; i++ {
			r, ok := randJoinRequest(u, db, rng)
			if !ok {
				continue
			}
			cands, ok := candidatesAndProbes(db, u.View, r)
			if !ok {
				continue
			}
			checkCandidates(t, db, u.View, r, cands)
			checked += len(cands)
		}
	}
	if checked < 50 {
		t.Fatalf("property test exercised only %d candidates", checked)
	}
	snap := sink.Metrics().Snapshot()
	if n := snap.Counters["core.verify.materialize"]; n != 0 {
		t.Errorf("core.verify.materialize = %d, want 0: some join candidate still rematerialized", n)
	}
	if snap.Counters["core.verify.ivm"] == 0 {
		t.Error("core.verify.ivm = 0: no candidate exercised the IVM path")
	}
	if snap.Counters["core.verify.delta"] == 0 {
		t.Error("core.verify.delta = 0: no candidate exercised the root-delta path")
	}
}
