package core

import (
	"strings"
	"testing"

	"viewupdate/internal/algebra"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

func TestPickFirstDeterministic(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	u := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	cands, err := EnumerateSPDelete(db, f.ViewP, u)
	if err != nil {
		t.Fatal(err)
	}
	p := PickFirst{}
	c1, err := p.Choose(DeleteRequest(u), cands)
	if err != nil {
		t.Fatal(err)
	}
	// Reversing the candidate order must not change the choice.
	rev := make([]Candidate, len(cands))
	for i, c := range cands {
		rev[len(cands)-1-i] = c
	}
	c2, err := p.Choose(DeleteRequest(u), rev)
	if err != nil {
		t.Fatal(err)
	}
	if !c1.Translation.Equal(c2.Translation) {
		t.Fatal("PickFirst not deterministic under reordering")
	}
	if _, err := p.Choose(DeleteRequest(u), nil); err == nil {
		t.Fatal("empty candidate list should fail")
	}
	if p.Name() == "" {
		t.Fatal("policy name empty")
	}
}

func TestRejectAmbiguous(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	u := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	cands, err := EnumerateSPDelete(db, f.ViewP, u)
	if err != nil {
		t.Fatal(err)
	}
	p := RejectAmbiguous{}
	if _, err := p.Choose(DeleteRequest(u), cands); err == nil {
		t.Fatal("two candidates should be ambiguous")
	}
	if _, err := p.Choose(DeleteRequest(u), cands[:1]); err != nil {
		t.Fatalf("single candidate should pass: %v", err)
	}
	if _, err := p.Choose(DeleteRequest(u), nil); err == nil {
		t.Fatal("no candidates should fail")
	}
	if p.Name() == "" {
		t.Fatal("policy name empty")
	}
}

func TestPreferClasses(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	u := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	cands, err := EnumerateSPDelete(db, f.ViewP, u)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		order []string
		want  string
	}{
		{[]string{"D-1", "D-2"}, "D-1"},
		{[]string{"D-2", "D-1"}, "D-2"},
		{[]string{"D-2"}, "D-2"},
	} {
		p := PreferClasses{Order: tc.order}
		c, err := p.Choose(DeleteRequest(u), cands)
		if err != nil {
			t.Fatal(err)
		}
		if c.Class != tc.want {
			t.Fatalf("order %v chose %s, want %s", tc.order, c.Class, tc.want)
		}
	}
	// Default name derives from the order; label overrides.
	if got := (PreferClasses{Order: []string{"D-1"}}).Name(); !strings.Contains(got, "D-1") {
		t.Fatalf("Name = %q", got)
	}
	if got := (PreferClasses{Label: "susan"}).Name(); got != "susan" {
		t.Fatalf("Name = %q", got)
	}
	if _, err := (PreferClasses{}).Choose(DeleteRequest(u), nil); err == nil {
		t.Fatal("empty candidates should fail")
	}
}

func TestClassTokens(t *testing.T) {
	cases := []struct {
		class string
		want  []string
	}{
		{"D-2", []string{"D-2"}},
		{"SPJ-I(emp:I-1, dept:R-1)", []string{"I-1", "R-1"}},
		{"SPJ-D(CXDv:D-1)", []string{"D-1"}},
	}
	for _, c := range cases {
		got := classTokens(c.class)
		if len(got) != len(c.want) {
			t.Fatalf("classTokens(%q) = %v", c.class, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("classTokens(%q) = %v, want %v", c.class, got, c.want)
			}
		}
	}
}

// TestWithDefaults steers extend-insert choices: a view projecting out
// Location with two selecting values picks the configured default.
func TestWithDefaults(t *testing.T) {
	f := fixtures.NewEmp(20)
	// View over EMP projecting out Location entirely (no selection):
	// extend-insert must choose a Location.
	v, err := view.NewSP("NoLoc", algebra.NewSelection(f.Rel), []string{"EmpNo", "Name", "Baseball"})
	if err != nil {
		t.Fatal(err)
	}
	if UniqueExtendInsert(v) {
		t.Fatal("hiding a 2-value attribute leaves extend-insert non-unique")
	}
	db := f.PaperInstance()
	u, err := MakeRow(v.Schema(), 9, "Ivan", false)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := EnumerateSPInsert(db, v, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("want 2 extend-insert choices, got %s", DescribeCandidates(cands))
	}
	p := WithDefaults{
		Base:     PickFirst{},
		Defaults: map[string]value.Value{"Location": value.NewString("San Francisco")},
	}
	c, err := p.Choose(InsertRequest(u), cands)
	if err != nil {
		t.Fatal(err)
	}
	if c.Choices["Location"] != value.NewString("San Francisco") {
		t.Fatalf("defaults ignored: %s", c)
	}
	if p.Name() == "" {
		t.Fatal("policy name empty")
	}
	if _, err := p.Choose(InsertRequest(u), nil); err == nil {
		t.Fatal("empty candidates should fail")
	}
}
