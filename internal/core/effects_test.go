package core

import (
	"strings"
	"testing"

	"viewupdate/internal/fixtures"
	"viewupdate/internal/update"
)

// TestSideEffectsSPViewsNone: SP-view translations satisfying the
// criteria never have view side effects.
func TestSideEffectsSPViewsNone(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	u := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	r := DeleteRequest(u)
	cands, err := Enumerate(db, f.ViewP, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		eff, err := SideEffects(db, f.ViewP, r, c.Translation)
		if err != nil {
			t.Fatal(err)
		}
		if !eff.None() {
			t.Fatalf("SP candidate %s has side effects: %s", c, eff)
		}
		if eff.String() != "no view side effects" {
			t.Fatalf("String = %q", eff.String())
		}
	}
}

// TestSideEffectsSharedParent: rewriting a shared parent through a join
// view changes the sibling rows — exactly one extra removed and one
// extra added per sibling.
func TestSideEffectsSharedParent(t *testing.T) {
	f := fixtures.NewABCXD()
	db := f.PaperInstance()
	// c4 claims parent (a, 9) while AB holds (a, 1); sibling c1 also
	// references a.
	u := f.ViewTuple("c4", "a", 6, 9)
	r := InsertRequest(u)
	cands, err := EnumerateJoinInsert(db, f.View, u)
	if err != nil {
		t.Fatal(err)
	}
	eff, err := SideEffects(db, f.View, r, cands[0].Translation)
	if err != nil {
		t.Fatal(err)
	}
	if eff.None() {
		t.Fatal("shared-parent rewrite should have side effects")
	}
	if eff.ExtraRemoved.Len() != 1 || eff.ExtraAdded.Len() != 1 {
		t.Fatalf("want one sibling changed, got %s", eff)
	}
	if !eff.ExtraRemoved.Contains(f.ViewTuple("c1", "a", 3, 1)) {
		t.Fatalf("old sibling row missing from %v", eff.ExtraRemoved.Slice())
	}
	if !eff.ExtraAdded.Contains(f.ViewTuple("c1", "a", 3, 9)) {
		t.Fatalf("new sibling row missing from %v", eff.ExtraAdded.Slice())
	}
	if !strings.Contains(eff.String(), "+1") || !strings.Contains(eff.String(), "-1") {
		t.Fatalf("String = %q", eff.String())
	}
}

// TestSideEffectsInapplicable: an inapplicable translation errors.
func TestSideEffectsInapplicable(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	u := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	ghost := f.Tuple(19, "Judy", "New York", false)
	tr := update.NewTranslation(update.NewDelete(ghost))
	if _, err := SideEffects(db, f.ViewP, DeleteRequest(u), tr); err == nil {
		t.Fatal("inapplicable translation should error")
	}
}
