package core

import (
	"strings"
	"testing"

	"viewupdate/internal/fixtures"
	"viewupdate/internal/update"
	"viewupdate/internal/view"
)

// TestDiamondMaterializeConvergence: rows whose reference paths to the
// shared node diverge do not appear.
func TestDiamondMaterializeConvergence(t *testing.T) {
	d := fixtures.NewDiamond()
	db := d.ConvergentInstance()
	if !d.View.IsDAG() {
		t.Fatal("diamond should be a DAG view")
	}
	rows := d.View.Materialize(db)
	if rows.Len() != 1 {
		t.Fatalf("want 1 convergent row, got %d: %v", rows.Len(), rows.Slice())
	}
	if !rows.Contains(d.ViewTuple(1, 1, 2, 5, 0)) {
		t.Fatalf("wrong row: %v", rows.Slice())
	}
	// The shared node contributes its attributes once.
	if d.View.Schema().Arity() != 9 {
		t.Fatalf("arity = %d, want 9", d.View.Schema().Arity())
	}
}

// TestDiamondSPJInsert: inserting a convergent row inserts each missing
// node once — the shared node is not inserted twice.
func TestDiamondSPJInsert(t *testing.T) {
	d := fixtures.NewDiamond()
	db := d.ConvergentInstance()
	// New root 3 with brand-new A 7, B 8 and shared C 9.
	u := d.ViewTuple(3, 7, 8, 9, 2)
	cands, err := EnumerateJoinInsert(db, d.View, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("identity DAG should give 1 candidate, got %s", DescribeCandidates(cands))
	}
	tr := cands[0].Translation
	if len(tr.Inserts()) != 4 {
		t.Fatalf("want 4 inserts (ROOT, A, B, C once), got %s", tr)
	}
	cInserts := 0
	for _, op := range tr.Ops() {
		if op.Kind == update.Insert && op.RelationName() == "C" {
			cInserts++
		}
	}
	if cInserts != 1 {
		t.Fatalf("shared node inserted %d times: %s", cInserts, tr)
	}
	if err := db.Apply(tr); err != nil {
		t.Fatal(err)
	}
	if !d.View.Materialize(db).Contains(u) {
		t.Fatal("inserted row missing")
	}
}

// TestDiamondSPJReplace: re-pointing the root at a new shared C via
// both arms replaces/creates nodes along both paths, with the shared
// node handled once (the DAG state join).
func TestDiamondSPJReplace(t *testing.T) {
	d := fixtures.NewDiamond()
	db := d.ConvergentInstance()
	old := d.ViewTuple(1, 1, 2, 5, 0)
	// Change the shared C's payload: ROOT/A/B projections unchanged
	// (state R all the way), C replaced once.
	new := d.ViewTuple(1, 1, 2, 5, 3)
	cands, err := EnumerateJoinReplace(db, d.View, old, new)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("got %s", DescribeCandidates(cands))
	}
	tr := cands[0].Translation
	if tr.Len() != 1 || len(tr.Replacements()) != 1 || tr.Replacements()[0].Old.Relation().Name() != "C" {
		t.Fatalf("want a single C replacement, got %s", tr)
	}
	if err := db.Apply(tr); err != nil {
		t.Fatal(err)
	}
	if !d.View.Materialize(db).Contains(new) {
		t.Fatal("replacement row missing")
	}

	// Side effects: changing the shared C affects every row referencing
	// it through any path — here only row 1 exists, so none; but
	// re-point A 1 to a fresh C while B 2 still references the old one:
	// the view row diverges and disappears — SPJ-R must reject or the
	// row would not realize the request. Build it: new view tuple keeps
	// RA=1, RB=2 but claims CK 9 on both paths; A and B rows must be
	// replaced to point at 9.
	old2 := d.ViewTuple(1, 1, 2, 5, 3)
	new2 := d.ViewTuple(1, 1, 2, 9, 2)
	cands, err = EnumerateJoinReplace(db, d.View, old2, new2)
	if err != nil {
		t.Fatal(err)
	}
	tr = cands[0].Translation
	// A and B re-pointed, C 9 inserted: 2 replacements + 1 insert.
	if len(tr.Replacements()) != 2 || len(tr.Inserts()) != 1 {
		t.Fatalf("want A,B replaced and C inserted, got %s", tr)
	}
	if err := db.Apply(tr); err != nil {
		t.Fatal(err)
	}
	if !d.View.Materialize(db).Contains(new2) {
		t.Fatal("re-pointed row missing")
	}
}

// TestDiamondSPJDelete: deletion touches only the root, as on trees.
func TestDiamondSPJDelete(t *testing.T) {
	d := fixtures.NewDiamond()
	db := d.ConvergentInstance()
	row := d.ViewTuple(1, 1, 2, 5, 0)
	cands, err := EnumerateJoinDelete(db, d.View, row)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range cands[0].Translation.Ops() {
		if op.RelationName() != "ROOT" {
			t.Fatalf("SPJ-D must touch only the root, got %s", op)
		}
	}
}

// TestDiamondRequestValidation: join-inconsistent tuples (arms naming
// different C keys) are rejected.
func TestDiamondRequestValidation(t *testing.T) {
	d := fixtures.NewDiamond()
	db := d.ConvergentInstance()
	// AC=5 but BC=6: the arms disagree.
	bad, err := MakeRow(d.View.Schema(), 3, 1, 2, 1, 5, 5, 0, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateRequest(db, d.View, InsertRequest(bad)); err == nil {
		t.Fatal("divergent view tuple should be rejected")
	}
}

// TestDAGConstructionValidation: cycles and tree-constructor misuse are
// rejected.
func TestDAGConstructionValidation(t *testing.T) {
	d := fixtures.NewDiamond()
	// The tree constructor rejects the shared node.
	cNode := &view.Node{SP: view.Identity("Cv", d.C)}
	aNode := &view.Node{SP: view.Identity("Av", d.A), Refs: []view.Ref{{Attrs: []string{"AC"}, Target: cNode}}}
	bNode := &view.Node{SP: view.Identity("Bv", d.B), Refs: []view.Ref{{Attrs: []string{"BC"}, Target: cNode}}}
	rootNode := &view.Node{SP: view.Identity("ROOTv", d.Root), Refs: []view.Ref{
		{Attrs: []string{"RA"}, Target: aNode},
		{Attrs: []string{"RB"}, Target: bNode},
	}}
	if _, err := view.NewJoin("TreeReject", d.Schema, rootNode); err == nil ||
		!strings.Contains(err.Error(), "not a tree") {
		t.Fatalf("tree constructor should reject shared nodes, got %v", err)
	}
	// The DAG constructor accepts it.
	if _, err := view.NewJoinDAG("DagOK", d.Schema, rootNode); err != nil {
		t.Fatalf("DAG constructor should accept the diamond: %v", err)
	}
	// A tree view is not marked as DAG.
	f := fixtures.NewABCXD()
	if f.View.IsDAG() {
		t.Fatal("tree views must not be marked DAG")
	}
}
