package algebra

import (
	"strings"
	"testing"

	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
)

func testRel(t testing.TB) *schema.Relation {
	t.Helper()
	k := schema.MustDomain("KD", value.NewInt(1), value.NewInt(2), value.NewInt(3))
	a := schema.MustDomain("AD", value.NewString("x"), value.NewString("y"), value.NewString("z"))
	b := schema.BoolDomain("BD")
	return schema.MustRelation("R", []schema.Attribute{
		{Name: "K", Domain: k},
		{Name: "A", Domain: a},
		{Name: "B", Domain: b},
	}, []string{"K"})
}

func mk(t testing.TB, rel *schema.Relation, k int64, a string, b bool) tuple.T {
	t.Helper()
	return tuple.MustNew(rel, value.NewInt(k), value.NewString(a), value.NewBool(b))
}

func TestSelectionTrue(t *testing.T) {
	rel := testRel(t)
	s := NewSelection(rel)
	if !s.IsTrue() {
		t.Fatal("empty conjunction should be true")
	}
	if s.String() != "true" {
		t.Fatalf("String = %q", s.String())
	}
	if !s.Matches(mk(t, rel, 1, "x", true)) {
		t.Fatal("true should match everything")
	}
	if got := s.SelectingValues("A"); len(got) != 3 {
		t.Fatalf("non-selecting attr should select whole domain, got %v", got)
	}
	if got := s.ExcludingValues("A"); len(got) != 0 {
		t.Fatalf("non-selecting attr should exclude nothing, got %v", got)
	}
	if len(s.SelectingAttributes()) != 0 {
		t.Fatal("true has no selecting attributes")
	}
}

func TestSelectionTermBasics(t *testing.T) {
	rel := testRel(t)
	s := NewSelection(rel)
	if err := s.AddTerm("A", value.NewString("x"), value.NewString("y")); err != nil {
		t.Fatal(err)
	}
	if s.IsTrue() || !s.IsSelecting("A") || s.IsSelecting("B") {
		t.Fatal("term bookkeeping wrong")
	}
	if !s.Matches(mk(t, rel, 1, "x", false)) || s.Matches(mk(t, rel, 1, "z", false)) {
		t.Fatal("Matches wrong")
	}
	if got := s.SelectingValues("A"); len(got) != 2 {
		t.Fatalf("SelectingValues = %v", got)
	}
	if got := s.ExcludingValues("A"); len(got) != 1 || got[0] != value.NewString("z") {
		t.Fatalf("ExcludingValues = %v", got)
	}
	if !s.Selects("A", value.NewString("x")) || s.Selects("A", value.NewString("z")) {
		t.Fatal("Selects wrong")
	}
	if !s.Selects("B", value.NewBool(true)) {
		t.Fatal("non-selecting attr should select all")
	}
	term := s.Term("A")
	if term == nil || term.Attr() != "A" {
		t.Fatal("Term accessor wrong")
	}
	if s.Term("B") != nil {
		t.Fatal("Term on non-selecting should be nil")
	}
	if got := term.String(); !strings.Contains(got, "A IN") {
		t.Fatalf("term String = %q", got)
	}
}

func TestSelectionErrors(t *testing.T) {
	rel := testRel(t)
	s := NewSelection(rel)
	if err := s.AddTerm("missing", value.NewString("x")); err == nil {
		t.Fatal("unknown attribute should fail")
	}
	if err := s.AddTerm("A"); err == nil {
		t.Fatal("empty selecting set should fail")
	}
	if err := s.AddTerm("A", value.NewInt(1)); err == nil {
		t.Fatal("out-of-domain value should fail")
	}
}

func TestSelectionConjunctionIntersects(t *testing.T) {
	rel := testRel(t)
	s := NewSelection(rel)
	if err := s.AddTerm("A", value.NewString("x"), value.NewString("y")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTerm("A", value.NewString("y"), value.NewString("z")); err != nil {
		t.Fatal(err)
	}
	if got := s.SelectingValues("A"); len(got) != 1 || got[0] != value.NewString("y") {
		t.Fatalf("conjunction should intersect: %v", got)
	}
	// Emptying intersection fails.
	if err := s.AddTerm("A", value.NewString("x")); err == nil {
		t.Fatal("empty intersection should fail")
	}
}

func TestSelectionMatchesProjected(t *testing.T) {
	rel := testRel(t)
	s := NewSelection(rel)
	if err := s.AddTerm("A", value.NewString("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTerm("B", value.NewBool(true)); err != nil {
		t.Fatal(err)
	}
	// A projected view tuple lacking B: terms on absent attrs ignored.
	proj, err := NewProjection(rel, []string{"K", "A"})
	if err != nil {
		t.Fatal(err)
	}
	vrel, err := proj.DerivedSchema("V")
	if err != nil {
		t.Fatal(err)
	}
	vt := tuple.MustNew(vrel, value.NewInt(1), value.NewString("x"))
	if !s.MatchesProjected(vt) {
		t.Fatal("MatchesProjected should ignore hidden terms")
	}
	bad := tuple.MustNew(vrel, value.NewInt(1), value.NewString("z"))
	if s.MatchesProjected(bad) {
		t.Fatal("MatchesProjected should check visible terms")
	}
	// Full Matches on a tuple missing the attribute fails.
	if s.Matches(vt) {
		t.Fatal("Matches should fail when a selecting attribute is absent")
	}
}

func TestSelectionCloneIndependent(t *testing.T) {
	rel := testRel(t)
	s := NewSelection(rel).MustAddTerm("A", value.NewString("x"))
	c := s.Clone()
	if err := c.AddTerm("B", value.NewBool(true)); err != nil {
		t.Fatal(err)
	}
	if s.IsSelecting("B") {
		t.Fatal("clone not independent")
	}
	if c.Relation() != rel {
		t.Fatal("clone lost relation")
	}
}

func TestSelectionString(t *testing.T) {
	rel := testRel(t)
	s := NewSelection(rel).
		MustAddTerm("B", value.NewBool(true)).
		MustAddTerm("A", value.NewString("x"))
	got := s.String()
	// Schema order: A term renders before B term.
	if !strings.Contains(got, "A IN {'x'}") || !strings.Contains(got, "B IN {true}") {
		t.Fatalf("String = %q", got)
	}
	if strings.Index(got, "A IN") > strings.Index(got, "B IN") {
		t.Fatalf("String not in schema order: %q", got)
	}
	if got := s.SortedAttrs(); len(got) != 2 || got[0] != "A" {
		t.Fatalf("SortedAttrs = %v", got)
	}
}

func TestProjection(t *testing.T) {
	rel := testRel(t)
	p, err := NewProjection(rel, []string{"K", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Relation() != rel || !p.Keeps("K") || p.Keeps("A") {
		t.Fatal("projection basics wrong")
	}
	if got := p.Attributes(); len(got) != 2 || got[1] != "B" {
		t.Fatalf("Attributes = %v", got)
	}
	if got := p.RemovedAttributes(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("RemovedAttributes = %v", got)
	}
	if p.IsIdentity() {
		t.Fatal("not identity")
	}
	if !p.KeepsKey() {
		t.Fatal("keeps key")
	}
	id := IdentityProjection(rel)
	if !id.IsIdentity() {
		t.Fatal("identity projection wrong")
	}
	vrel, err := p.DerivedSchema("V")
	if err != nil {
		t.Fatal(err)
	}
	if vrel.Arity() != 2 || vrel.Key()[0] != "K" {
		t.Fatal("derived schema wrong")
	}
	row, err := p.Apply(vrel, mk(t, rel, 2, "y", true))
	if err != nil {
		t.Fatal(err)
	}
	if row.MustGet("B") != value.NewBool(true) {
		t.Fatal("Apply wrong")
	}
}

func TestProjectionErrors(t *testing.T) {
	rel := testRel(t)
	if _, err := NewProjection(rel, nil); err == nil {
		t.Fatal("empty projection should fail")
	}
	if _, err := NewProjection(rel, []string{"missing"}); err == nil {
		t.Fatal("unknown attribute should fail")
	}
	if _, err := NewProjection(rel, []string{"K", "K"}); err == nil {
		t.Fatal("duplicate attribute should fail")
	}
	// Dropping the key blocks DerivedSchema.
	p, err := NewProjection(rel, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if p.KeepsKey() {
		t.Fatal("KeepsKey should be false")
	}
	if _, err := p.DerivedSchema("V"); err == nil {
		t.Fatal("DerivedSchema without key should fail")
	}
}
