package algebra

import (
	"fmt"

	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
)

// A Projection selects an ordered subset of a relation's attributes.
type Projection struct {
	rel   *schema.Relation
	attrs []string
	keep  map[string]bool
}

// NewProjection builds a projection of rel onto attrs (each must exist,
// no duplicates, at least one attribute).
func NewProjection(rel *schema.Relation, attrs []string) (*Projection, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("algebra: empty projection of %s", rel.Name())
	}
	keep := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if !rel.Has(a) {
			return nil, fmt.Errorf("algebra: projection attribute %s not in %s", a, rel.Name())
		}
		if keep[a] {
			return nil, fmt.Errorf("algebra: projection repeats attribute %s", a)
		}
		keep[a] = true
	}
	cp := make([]string, len(attrs))
	copy(cp, attrs)
	return &Projection{rel: rel, attrs: cp, keep: keep}, nil
}

// IdentityProjection projects rel onto all of its attributes.
func IdentityProjection(rel *schema.Relation) *Projection {
	p, err := NewProjection(rel, rel.AttributeNames())
	if err != nil {
		panic(err)
	}
	return p
}

// Relation returns the base relation schema.
func (p *Projection) Relation() *schema.Relation { return p.rel }

// Attributes returns the projected attribute names in order (copy).
func (p *Projection) Attributes() []string {
	out := make([]string, len(p.attrs))
	copy(out, p.attrs)
	return out
}

// Keeps reports whether attr survives the projection.
func (p *Projection) Keeps(attr string) bool { return p.keep[attr] }

// IsIdentity reports whether every base attribute is kept.
func (p *Projection) IsIdentity() bool { return len(p.attrs) == len(p.rel.Attributes()) }

// RemovedAttributes returns the base attributes projected out, in
// schema order.
func (p *Projection) RemovedAttributes() []string {
	var out []string
	for _, a := range p.rel.Attributes() {
		if !p.keep[a.Name] {
			out = append(out, a.Name)
		}
	}
	return out
}

// KeepsKey reports whether all key attributes survive (required for the
// paper's view class: "the key of the relation must appear in the
// view").
func (p *Projection) KeepsKey() bool {
	for _, k := range p.rel.Key() {
		if !p.keep[k] {
			return false
		}
	}
	return true
}

// DerivedSchema builds the relation schema of the projected result,
// named name, with the base key as key. Fails unless the key is kept.
func (p *Projection) DerivedSchema(name string) (*schema.Relation, error) {
	if !p.KeepsKey() {
		return nil, fmt.Errorf("algebra: projection of %s drops part of the key", p.rel.Name())
	}
	attrs := make([]schema.Attribute, len(p.attrs))
	for i, a := range p.attrs {
		base, _ := p.rel.Attribute(a)
		attrs[i] = base
	}
	return schema.NewRelation(name, attrs, p.rel.Key())
}

// Apply projects a base tuple into the derived schema.
func (p *Projection) Apply(derived *schema.Relation, t tuple.T) (tuple.T, error) {
	vals := make([]value.Value, len(p.attrs))
	for i, a := range p.attrs {
		v, ok := t.Get(a)
		if !ok {
			return tuple.T{}, fmt.Errorf("algebra: tuple %s lacks attribute %s", t, a)
		}
		vals[i] = v
	}
	return tuple.New(derived, vals...)
}
