package algebra

import (
	"strings"
	"testing"

	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
)

// mapSource is a simple in-memory algebra.Source for tests.
type mapSource struct {
	schemas map[string]*schema.Relation
	tuples  map[string][]tuple.T
}

func (m *mapSource) RelationTuples(name string) []tuple.T        { return m.tuples[name] }
func (m *mapSource) RelationSchema(name string) *schema.Relation { return m.schemas[name] }

// figSource builds the paper's AB/CXD instance (§5-1) as a Source.
func figSource(t testing.TB) *mapSource {
	t.Helper()
	aDom := schema.MustDomain("ADom", value.NewString("a"), value.NewString("a1"), value.NewString("a2"))
	bDom := schema.MustDomain("BDom", value.NewInt(1), value.NewInt(2), value.NewInt(3))
	cDom := schema.MustDomain("CDom", value.NewString("c1"), value.NewString("c2"), value.NewString("c3"))
	dDom := schema.MustDomain("DDom", value.NewInt(7), value.NewInt(8), value.NewInt(9))
	ab := schema.MustRelation("AB", []schema.Attribute{
		{Name: "A", Domain: aDom},
		{Name: "B", Domain: bDom},
	}, []string{"A"})
	cxd := schema.MustRelation("CXD", []schema.Attribute{
		{Name: "C", Domain: cDom},
		{Name: "X", Domain: aDom},
		{Name: "D", Domain: dDom},
	}, []string{"C"})
	abT := func(a string, b int64) tuple.T {
		return tuple.MustNew(ab, value.NewString(a), value.NewInt(b))
	}
	cxdT := func(c, x string, d int64) tuple.T {
		return tuple.MustNew(cxd, value.NewString(c), value.NewString(x), value.NewInt(d))
	}
	return &mapSource{
		schemas: map[string]*schema.Relation{"AB": ab, "CXD": cxd},
		tuples: map[string][]tuple.T{
			"AB":  {abT("a", 1), abT("a1", 2), abT("a2", 3)},
			"CXD": {cxdT("c1", "a", 7), cxdT("c2", "a", 8), cxdT("c3", "a2", 9)},
		},
	}
}

func TestRelEval(t *testing.T) {
	src := figSource(t)
	res, err := (Rel{Name: "AB"}).Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 || len(res.Cols) != 2 {
		t.Fatalf("AB eval wrong: %d rows, cols %v", res.Len(), res.Cols)
	}
	if _, err := (Rel{Name: "missing"}).Eval(src); err == nil {
		t.Fatal("unknown relation should fail")
	}
}

func TestSelectEval(t *testing.T) {
	src := figSource(t)
	e := Select{Input: Rel{Name: "CXD"}, Attr: "X", Vals: []value.Value{value.NewString("a")}}
	res, err := e.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("selection should keep 2 rows, got %d", res.Len())
	}
	bad := Select{Input: Rel{Name: "CXD"}, Attr: "nope", Vals: []value.Value{value.NewString("a")}}
	if _, err := bad.Eval(src); err == nil {
		t.Fatal("selection on absent column should fail")
	}
}

func TestProjectEval(t *testing.T) {
	src := figSource(t)
	e := Project{Input: Rel{Name: "CXD"}, Attrs: []string{"C", "X"}}
	res, err := e.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 || len(res.Cols) != 2 {
		t.Fatalf("projection wrong: %d rows, %v", res.Len(), res.Cols)
	}
	// Projection can merge rows (set semantics).
	e2 := Project{Input: Rel{Name: "CXD"}, Attrs: []string{"X"}}
	res2, err := e2.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != 2 {
		t.Fatalf("set semantics should merge duplicate X values, got %d", res2.Len())
	}
	bad := Project{Input: Rel{Name: "CXD"}, Attrs: []string{"nope"}}
	if _, err := bad.Eval(src); err == nil {
		t.Fatal("projection of absent column should fail")
	}
}

func TestJoinEval(t *testing.T) {
	src := figSource(t)
	e := Join{
		Left: Rel{Name: "CXD"}, Right: Rel{Name: "AB"},
		LeftAttrs: []string{"X"}, RightAttrs: []string{"A"},
	}
	res, err := e.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("join should produce 3 rows, got %d", res.Len())
	}
	for _, row := range res.Rows() {
		if row["X"] != row["A"] {
			t.Fatalf("join row violates X=A: %v", row)
		}
	}
	bad := Join{Left: Rel{Name: "CXD"}, Right: Rel{Name: "AB"}, LeftAttrs: []string{"X"}}
	if _, err := bad.Eval(src); err == nil {
		t.Fatal("malformed join should fail")
	}
	bad2 := Join{Left: Rel{Name: "CXD"}, Right: Rel{Name: "AB"},
		LeftAttrs: []string{"nope"}, RightAttrs: []string{"A"}}
	if _, err := bad2.Eval(src); err == nil {
		t.Fatal("join on absent column should fail")
	}
}

func TestResultEqual(t *testing.T) {
	a := NewResult([]string{"X", "Y"})
	b := NewResult([]string{"Y", "X"}) // column order immaterial
	row := Row{"X": value.NewInt(1), "Y": value.NewInt(2)}
	a.Add(row)
	b.Add(row)
	if !a.Equal(b) {
		t.Fatal("results with same rows should be equal")
	}
	b.Add(Row{"X": value.NewInt(3), "Y": value.NewInt(4)})
	if a.Equal(b) {
		t.Fatal("different cardinality should differ")
	}
	c := NewResult([]string{"X", "Z"})
	c.Add(Row{"X": value.NewInt(1), "Z": value.NewInt(2)})
	if a.Equal(c) {
		t.Fatal("different columns should differ")
	}
}

func TestExprString(t *testing.T) {
	e := Project{
		Input: Select{Input: Rel{Name: "AB"}, Attr: "B", Vals: []value.Value{value.NewInt(1)}},
		Attrs: []string{"A"},
	}
	s := e.String()
	if !strings.Contains(s, "π[A]") || !strings.Contains(s, "σ[B∈{1}]") || !strings.Contains(s, "AB") {
		t.Fatalf("String = %q", s)
	}
}

// TestSPJNFTheorem validates §5's conversion theorem on the paper's
// figure: an expression with interleaved selections and projections
// around the join evaluates identically to its SPJNF normal form.
func TestSPJNFTheorem(t *testing.T) {
	src := figSource(t)
	// π[C,X,A,B] σ[B∈{1,2}] ( σ[X∈{a,a2}](CXD) ⋈ AB ) with a
	// mid-stream projection on the left input.
	orig := Project{
		Input: Select{
			Input: Join{
				Left: Project{
					Input: Select{Input: Rel{Name: "CXD"}, Attr: "X",
						Vals: []value.Value{value.NewString("a"), value.NewString("a2")}},
					Attrs: []string{"C", "X"},
				},
				Right:      Rel{Name: "AB"},
				LeftAttrs:  []string{"X"},
				RightAttrs: []string{"A"},
			},
			Attr: "B",
			Vals: []value.Value{value.NewInt(1), value.NewInt(2)},
		},
		Attrs: []string{"C", "X", "A", "B"},
	}
	n, err := Normalize(orig, src)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if len(n.Bases) != 2 || len(n.Joins) != 1 {
		t.Fatalf("normal form shape wrong: %+v", n)
	}
	want, err := orig.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.Expr().Eval(src)
	if err != nil {
		t.Fatalf("normal form eval: %v", err)
	}
	if !want.Equal(got) {
		t.Fatalf("SPJNF result differs:\noriginal: %v\nnormal:   %v", want.Rows(), got.Rows())
	}
	if s := n.String(); !strings.Contains(s, "⋈") {
		t.Fatalf("SPJNF String = %q", s)
	}
}

// TestSPJNFSelectionAboveProjectionOfHiddenColumn checks that a
// selection applied before a projection that later drops the selected
// column still normalizes correctly (the selection moves to the base).
func TestSPJNFSelectionPushdown(t *testing.T) {
	src := figSource(t)
	orig := Project{
		Input: Select{Input: Rel{Name: "CXD"}, Attr: "D", Vals: []value.Value{value.NewInt(7)}},
		Attrs: []string{"C", "X"},
	}
	n, err := Normalize(orig, src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := orig.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.Expr().Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatalf("pushdown differs: %v vs %v", want.Rows(), got.Rows())
	}
	if want.Len() != 1 {
		t.Fatalf("selection should keep exactly one row, got %d", want.Len())
	}
}

// TestSPJNFPreconditionViolations checks that expressions outside the
// theorem's class are rejected.
func TestSPJNFPreconditionViolations(t *testing.T) {
	src := figSource(t)
	// Projection removes the join attribute X.
	bad := Join{
		Left:       Project{Input: Rel{Name: "CXD"}, Attrs: []string{"C", "X"}},
		Right:      Rel{Name: "AB"},
		LeftAttrs:  []string{"X"},
		RightAttrs: []string{"A"},
	}
	badOuter := Project{Input: bad, Attrs: []string{"C", "B"}}
	if _, err := Normalize(badOuter, src); err == nil {
		t.Fatal("projection removing a join attribute should be rejected")
	}
	// Self-join.
	self := Join{
		Left: Rel{Name: "AB"}, Right: Rel{Name: "AB"},
		LeftAttrs: []string{"A"}, RightAttrs: []string{"A"},
	}
	if _, err := Normalize(self, src); err == nil {
		t.Fatal("self-join should be rejected")
	}
	// Unknown relation.
	if _, err := Normalize(Rel{Name: "missing"}, src); err == nil {
		t.Fatal("unknown relation should be rejected")
	}
}

// TestSPJNFThreeWay normalizes a three-relation chain and compares
// results.
func TestSPJNFThreeWay(t *testing.T) {
	src := figSource(t)
	// Add a third relation referencing CXD.
	eDom := schema.MustDomain("EDom", value.NewString("e1"), value.NewString("e2"))
	ce := schema.MustRelation("EC", []schema.Attribute{
		{Name: "E", Domain: eDom},
		{Name: "CR", Domain: src.schemas["CXD"].Attributes()[0].Domain},
	}, []string{"E"})
	src.schemas["EC"] = ce
	src.tuples["EC"] = []tuple.T{
		tuple.MustNew(ce, value.NewString("e1"), value.NewString("c1")),
		tuple.MustNew(ce, value.NewString("e2"), value.NewString("c3")),
	}
	orig := Join{
		Left: Join{
			Left: Rel{Name: "EC"}, Right: Rel{Name: "CXD"},
			LeftAttrs: []string{"CR"}, RightAttrs: []string{"C"},
		},
		Right:      Rel{Name: "AB"},
		LeftAttrs:  []string{"X"},
		RightAttrs: []string{"A"},
	}
	n, err := Normalize(orig, src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := orig.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.Expr().Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatalf("three-way differs:\n%v\n%v", want.Rows(), got.Rows())
	}
	if want.Len() != 2 {
		t.Fatalf("expected 2 rows, got %d", want.Len())
	}
}
