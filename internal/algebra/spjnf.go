package algebra

import (
	"fmt"
	"sort"
	"strings"

	"viewupdate/internal/value"
)

// SPJNF is the paper's Select-Project-Join Normal Form: per-relation
// selections, then per-relation projections, then the joins. "Note in
// particular that this implies that the join attributes must appear in
// the view."
type SPJNF struct {
	// Bases lists the per-relation select-project stages in the order
	// the relations first appear in the original expression.
	Bases []SPBase
	// Joins lists the join edges in original order. Attribute names
	// refer to the (globally unique) base columns.
	Joins []JoinEdge
	// Output is the final column set (sorted).
	Output []string
}

// SPBase is one base relation's select-project stage.
type SPBase struct {
	Rel   string
	Terms map[string][]value.Value // attr -> selecting values (sorted)
	Proj  []string                 // kept columns, in base schema order
}

// JoinEdge equates Left's LeftAttrs with Right's RightAttrs.
type JoinEdge struct {
	LeftAttrs  []string
	RightAttrs []string
}

// Expr builds an evaluable expression in SPJNF shape (selections
// innermost per relation, then projections, joins outermost,
// left-deep in base order).
func (n *SPJNF) Expr() Expr {
	stages := make([]Expr, len(n.Bases))
	for i, b := range n.Bases {
		var e Expr = Rel{Name: b.Rel}
		attrs := make([]string, 0, len(b.Terms))
		for a := range b.Terms {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for _, a := range attrs {
			e = Select{Input: e, Attr: a, Vals: b.Terms[a]}
		}
		e = Project{Input: e, Attrs: b.Proj}
		stages[i] = e
	}
	// Reconstruct joins by connecting stages with the recorded edges:
	// attach stages to the accumulated left-deep tree greedily until
	// all are joined (the edges form a connected graph over the bases
	// in the paper's view class).
	out := stages[0]
	joined := map[int]bool{0: true}
	haveCols := map[string]bool{}
	for _, c := range n.Bases[0].Proj {
		haveCols[c] = true
	}
	used := make([]bool, len(n.Joins))
	for len(joined) < len(stages) {
		progressed := false
		for ei, e := range n.Joins {
			if used[ei] {
				continue
			}
			li, lok := n.ownerStage(e.LeftAttrs[0])
			ri, rok := n.ownerStage(e.RightAttrs[0])
			if !lok || !rok {
				continue
			}
			var newIdx int
			var la, ra []string
			switch {
			case joined[li] && !joined[ri]:
				newIdx, la, ra = ri, e.LeftAttrs, e.RightAttrs
			case joined[ri] && !joined[li]:
				newIdx, la, ra = li, e.RightAttrs, e.LeftAttrs
			default:
				continue
			}
			out = Join{Left: out, Right: stages[newIdx], LeftAttrs: la, RightAttrs: ra}
			joined[newIdx] = true
			used[ei] = true
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return out
}

// ownerStage returns the index of the base stage owning column c.
func (n *SPJNF) ownerStage(c string) (int, bool) {
	for i, b := range n.Bases {
		for _, p := range b.Proj {
			if p == c {
				return i, true
			}
		}
	}
	return 0, false
}

// String renders the normal form.
func (n *SPJNF) String() string {
	parts := make([]string, len(n.Bases))
	for i, b := range n.Bases {
		terms := make([]string, 0, len(b.Terms))
		attrs := make([]string, 0, len(b.Terms))
		for a := range b.Terms {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for _, a := range attrs {
			vals := make([]string, len(b.Terms[a]))
			for j, v := range b.Terms[a] {
				vals[j] = v.String()
			}
			terms = append(terms, fmt.Sprintf("%s∈{%s}", a, strings.Join(vals, ",")))
		}
		cond := "true"
		if len(terms) > 0 {
			cond = strings.Join(terms, "∧")
		}
		parts[i] = fmt.Sprintf("π[%s]σ[%s](%s)", strings.Join(b.Proj, ","), cond, b.Rel)
	}
	return strings.Join(parts, " ⋈ ")
}

// Normalize converts an arbitrary select-project-join expression into
// SPJNF, implementing the theorem of §5. It fails if the expression
// violates the theorem's preconditions: duplicate base relations,
// non-unique column names, or a projection that removes a join
// attribute.
func Normalize(e Expr, src Source) (*SPJNF, error) {
	n := &SPJNF{}
	colOwner := map[string]string{} // column -> base relation
	baseIdx := map[string]int{}

	var outCols []string
	var walk func(e Expr) ([]string, error)
	walk = func(e Expr) ([]string, error) {
		switch x := e.(type) {
		case Rel:
			sch := src.RelationSchema(x.Name)
			if sch == nil {
				return nil, fmt.Errorf("algebra: unknown relation %s", x.Name)
			}
			if _, dup := baseIdx[x.Name]; dup {
				return nil, fmt.Errorf("algebra: relation %s appears twice (self-joins not in the paper's class)", x.Name)
			}
			baseIdx[x.Name] = len(n.Bases)
			n.Bases = append(n.Bases, SPBase{Rel: x.Name, Terms: map[string][]value.Value{}})
			cols := sch.AttributeNames()
			for _, c := range cols {
				if prev, clash := colOwner[c]; clash {
					return nil, fmt.Errorf("algebra: column %s appears in both %s and %s", c, prev, x.Name)
				}
				colOwner[c] = x.Name
			}
			return cols, nil
		case Select:
			cols, err := walk(x.Input)
			if err != nil {
				return nil, err
			}
			if !hasCol(cols, x.Attr) {
				return nil, fmt.Errorf("algebra: selection on absent column %s", x.Attr)
			}
			owner := colOwner[x.Attr]
			b := &n.Bases[baseIdx[owner]]
			b.Terms[x.Attr] = intersectVals(b.Terms[x.Attr], x.Vals)
			return cols, nil
		case Project:
			cols, err := walk(x.Input)
			if err != nil {
				return nil, err
			}
			for _, a := range x.Attrs {
				if !hasCol(cols, a) {
					return nil, fmt.Errorf("algebra: projection on absent column %s", a)
				}
			}
			return append([]string{}, x.Attrs...), nil
		case Join:
			lcols, err := walk(x.Left)
			if err != nil {
				return nil, err
			}
			rcols, err := walk(x.Right)
			if err != nil {
				return nil, err
			}
			if len(x.LeftAttrs) != len(x.RightAttrs) || len(x.LeftAttrs) == 0 {
				return nil, fmt.Errorf("algebra: malformed join %s", x)
			}
			for _, a := range x.LeftAttrs {
				if !hasCol(lcols, a) {
					return nil, fmt.Errorf("algebra: join attribute %s missing from left side", a)
				}
			}
			for _, a := range x.RightAttrs {
				if !hasCol(rcols, a) {
					return nil, fmt.Errorf("algebra: join attribute %s missing from right side", a)
				}
			}
			n.Joins = append(n.Joins, JoinEdge{
				LeftAttrs:  append([]string{}, x.LeftAttrs...),
				RightAttrs: append([]string{}, x.RightAttrs...),
			})
			return append(append([]string{}, lcols...), rcols...), nil
		default:
			return nil, fmt.Errorf("algebra: unknown expression node %T", e)
		}
	}
	cols, err := walk(e)
	if err != nil {
		return nil, err
	}
	outCols = cols

	// Theorem precondition: no projection removed a join attribute —
	// equivalently here, every join attribute survives to the output.
	outSet := make(map[string]bool, len(outCols))
	for _, c := range outCols {
		outSet[c] = true
	}
	for _, j := range n.Joins {
		for _, a := range append(append([]string{}, j.LeftAttrs...), j.RightAttrs...) {
			if !outSet[a] {
				return nil, fmt.Errorf("algebra: join attribute %s removed by a projection (outside the theorem's class)", a)
			}
		}
	}

	// Per-base projection: the output columns owned by the base, in
	// base schema order. Intersected selections already accumulated.
	for i := range n.Bases {
		sch := src.RelationSchema(n.Bases[i].Rel)
		var proj []string
		for _, a := range sch.AttributeNames() {
			if outSet[a] {
				proj = append(proj, a)
			}
		}
		if len(proj) == 0 {
			return nil, fmt.Errorf("algebra: relation %s contributes no output columns", n.Bases[i].Rel)
		}
		n.Bases[i].Proj = proj
	}

	n.Output = append([]string{}, outCols...)
	sort.Strings(n.Output)
	return n, nil
}

// intersectVals intersects two selecting-value lists; a nil prev means
// "unconstrained" (whole domain).
func intersectVals(prev, next []value.Value) []value.Value {
	if prev == nil {
		out := append([]value.Value{}, next...)
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		return dedupVals(out)
	}
	in := make(map[value.Value]bool, len(next))
	for _, v := range next {
		in[v] = true
	}
	var out []value.Value
	for _, v := range prev {
		if in[v] {
			out = append(out, v)
		}
	}
	return out
}

func dedupVals(sorted []value.Value) []value.Value {
	var out []value.Value
	for i, v := range sorted {
		if i == 0 || sorted[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}
