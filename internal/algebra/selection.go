// Package algebra implements the relational operators the paper's view
// class is built from: conjunctive selections whose terms have the form
// "attribute ∈ set of constants", projections, and extension joins,
// plus general select–project–join expressions and the SPJNF
// normalization theorem of §5.
package algebra

import (
	"fmt"
	"sort"
	"strings"

	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
)

// A Term is one conjunct of a selection condition: Attr ∈ selecting.
// The paper calls the values in the set "selecting values" and those in
// its complement (w.r.t. the attribute's domain) "excluding values".
type Term struct {
	attr      string
	domain    *schema.Domain
	selecting map[value.Value]bool
}

// Attr returns the attribute the term constrains.
func (t *Term) Attr() string { return t.attr }

// Selects reports whether v is a selecting value.
func (t *Term) Selects(v value.Value) bool { return t.selecting[v] }

// SelectingValues returns the selecting values in ascending order.
func (t *Term) SelectingValues() []value.Value {
	out := make([]value.Value, 0, len(t.selecting))
	for _, v := range t.domain.Values() {
		if t.selecting[v] {
			out = append(out, v)
		}
	}
	return out
}

// ExcludingValues returns the excluding values (domain minus selecting)
// in ascending order.
func (t *Term) ExcludingValues() []value.Value {
	return t.domain.Complement(t.selecting)
}

// String renders the term as Attr IN {v1,v2}.
func (t *Term) String() string {
	vals := t.SelectingValues()
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s IN {%s}", t.attr, strings.Join(parts, ","))
}

// A Selection is a conjunction of Terms over one relation schema. The
// empty conjunction is the condition "true". "This type of selection
// condition allows attributes to be treated independently in view
// updates." Adding a second term on the same attribute intersects the
// selecting sets (conjunction).
type Selection struct {
	rel   *schema.Relation
	terms map[string]*Term
}

// NewSelection returns the selection "true" over rel.
func NewSelection(rel *schema.Relation) *Selection {
	return &Selection{rel: rel, terms: make(map[string]*Term)}
}

// Relation returns the schema the selection applies to.
func (s *Selection) Relation() *schema.Relation { return s.rel }

// AddTerm conjoins the condition attr ∈ vals. Every val must belong to
// the attribute's domain and the resulting selecting set must be
// non-empty (an empty selecting set makes the view identically empty
// and no tuple could ever be inserted).
func (s *Selection) AddTerm(attr string, vals ...value.Value) error {
	a, ok := s.rel.Attribute(attr)
	if !ok {
		return fmt.Errorf("algebra: selection attribute %s not in %s", attr, s.rel.Name())
	}
	if len(vals) == 0 {
		return fmt.Errorf("algebra: empty selecting set for %s.%s", s.rel.Name(), attr)
	}
	in := make(map[value.Value]bool, len(vals))
	for _, v := range vals {
		if !a.Domain.Contains(v) {
			return fmt.Errorf("algebra: selecting value %s not in domain %s of %s.%s",
				v, a.Domain.Name(), s.rel.Name(), attr)
		}
		in[v] = true
	}
	if prev, exists := s.terms[attr]; exists {
		merged := make(map[value.Value]bool)
		for v := range prev.selecting {
			if in[v] {
				merged[v] = true
			}
		}
		if len(merged) == 0 {
			return fmt.Errorf("algebra: conjunction empties selecting set of %s.%s", s.rel.Name(), attr)
		}
		prev.selecting = merged
		return nil
	}
	s.terms[attr] = &Term{attr: attr, domain: a.Domain, selecting: in}
	return nil
}

// MustAddTerm is AddTerm, panicking on error.
func (s *Selection) MustAddTerm(attr string, vals ...value.Value) *Selection {
	if err := s.AddTerm(attr, vals...); err != nil {
		panic(err)
	}
	return s
}

// IsTrue reports whether the selection is the empty conjunction.
func (s *Selection) IsTrue() bool { return len(s.terms) == 0 }

// Term returns the term on attr, or nil if attr is non-selecting.
func (s *Selection) Term(attr string) *Term { return s.terms[attr] }

// SelectingAttributes returns the attributes appearing in the
// condition, in schema order.
func (s *Selection) SelectingAttributes() []string {
	var out []string
	for _, a := range s.rel.Attributes() {
		if _, ok := s.terms[a.Name]; ok {
			out = append(out, a.Name)
		}
	}
	return out
}

// IsSelecting reports whether attr appears in the condition.
func (s *Selection) IsSelecting(attr string) bool {
	_, ok := s.terms[attr]
	return ok
}

// SelectingValues returns the selecting values of attr: the term's set
// if attr is selecting, else the whole domain ("for non-selecting
// attributes the set of selecting values is the entire domain").
func (s *Selection) SelectingValues(attr string) []value.Value {
	if t, ok := s.terms[attr]; ok {
		return t.SelectingValues()
	}
	a, ok := s.rel.Attribute(attr)
	if !ok {
		return nil
	}
	return a.Domain.Values()
}

// ExcludingValues returns the excluding values of attr (empty for
// non-selecting attributes).
func (s *Selection) ExcludingValues(attr string) []value.Value {
	if t, ok := s.terms[attr]; ok {
		return t.ExcludingValues()
	}
	return nil
}

// Selects reports whether value v is selecting for attr.
func (s *Selection) Selects(attr string, v value.Value) bool {
	if t, ok := s.terms[attr]; ok {
		return t.Selects(v)
	}
	return true
}

// Matches evaluates the condition on a tuple of the base relation.
func (s *Selection) Matches(t tuple.T) bool {
	for attr, term := range s.terms {
		v, ok := t.Get(attr)
		if !ok {
			return false
		}
		if !term.Selects(v) {
			return false
		}
	}
	return true
}

// MatchesProjected evaluates the condition restricted to the attributes
// present in t's schema, ignoring terms on absent attributes. This is
// the check applicable to a view tuple when some selecting attributes
// are projected out.
func (s *Selection) MatchesProjected(t tuple.T) bool {
	for attr, term := range s.terms {
		v, ok := t.Get(attr)
		if !ok {
			continue
		}
		if !term.Selects(v) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the selection.
func (s *Selection) Clone() *Selection {
	out := NewSelection(s.rel)
	for attr, term := range s.terms {
		in := make(map[value.Value]bool, len(term.selecting))
		for v := range term.selecting {
			in[v] = true
		}
		out.terms[attr] = &Term{attr: attr, domain: term.domain, selecting: in}
	}
	return out
}

// String renders the condition as a conjunction in schema-attribute
// order, or "true".
func (s *Selection) String() string {
	if s.IsTrue() {
		return "true"
	}
	attrs := s.SelectingAttributes()
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = s.terms[a].String()
	}
	return strings.Join(parts, " AND ")
}

// SortedAttrs returns the selecting attributes sorted by name.
func (s *Selection) SortedAttrs() []string {
	out := s.SelectingAttributes()
	sort.Strings(out)
	return out
}
