package algebra

import (
	"fmt"
	"sort"
	"strings"

	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
)

// This file implements general select–project–join expressions and the
// SPJNF theorem of §5: "Any relational query where no projection
// removes a join attribute and the selection conditions are
// conjunctions of the form 'attribute in set' can be converted into an
// equivalent relational query that is in SPJNF" (selections first,
// projections next, joins last).
//
// Attribute names are assumed globally unique across the base relations
// of one expression, so a column name identifies its owning relation.

// A Row is an evaluated result row: column name -> value.
type Row map[string]value.Value

// encodeRow canonically encodes a row over the given column order.
func encodeRow(cols []string, r Row) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r[c].Encode())
	}
	return b.String()
}

// A Result is a set of rows over an ordered column list.
type Result struct {
	Cols []string
	rows map[string]Row
}

// NewResult returns an empty result with the given columns.
func NewResult(cols []string) *Result {
	cp := make([]string, len(cols))
	copy(cp, cols)
	return &Result{Cols: cp, rows: make(map[string]Row)}
}

// Add inserts a row (set semantics).
func (r *Result) Add(row Row) { r.rows[encodeRow(r.Cols, row)] = row }

// Len returns the number of rows.
func (r *Result) Len() int { return len(r.rows) }

// Rows returns the rows in deterministic order.
func (r *Result) Rows() []Row {
	keys := make([]string, 0, len(r.rows))
	for k := range r.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Row, len(keys))
	for i, k := range keys {
		out[i] = r.rows[k]
	}
	return out
}

// Equal reports whether two results have the same column set and rows.
// Column order is immaterial: rows are compared by name.
func (r *Result) Equal(o *Result) bool {
	if len(r.Cols) != len(o.Cols) || r.Len() != o.Len() {
		return false
	}
	mine := make(map[string]bool, len(r.Cols))
	for _, c := range r.Cols {
		mine[c] = true
	}
	for _, c := range o.Cols {
		if !mine[c] {
			return false
		}
	}
	canon := make([]string, len(r.Cols))
	copy(canon, r.Cols)
	sort.Strings(canon)
	index := func(res *Result) map[string]bool {
		m := make(map[string]bool, res.Len())
		for _, row := range res.rows {
			m[encodeRow(canon, row)] = true
		}
		return m
	}
	a, b := index(r), index(o)
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// A Source supplies base-relation contents to expression evaluation.
type Source interface {
	// RelationTuples returns the tuples of the named relation.
	RelationTuples(name string) []tuple.T
	// RelationSchema returns the schema of the named relation.
	RelationSchema(name string) *schema.Relation
}

// An Expr is a relational expression node.
type Expr interface {
	// Eval evaluates the expression against src.
	Eval(src Source) (*Result, error)
	// String renders the expression.
	String() string
}

// Rel is a base-relation leaf.
type Rel struct{ Name string }

// Eval implements Expr.
func (r Rel) Eval(src Source) (*Result, error) {
	sch := src.RelationSchema(r.Name)
	if sch == nil {
		return nil, fmt.Errorf("algebra: unknown relation %s", r.Name)
	}
	res := NewResult(sch.AttributeNames())
	for _, t := range src.RelationTuples(r.Name) {
		row := make(Row, sch.Arity())
		for i, a := range sch.Attributes() {
			row[a.Name] = t.At(i)
		}
		res.Add(row)
	}
	return res, nil
}

func (r Rel) String() string { return r.Name }

// Select filters the input by one term Attr ∈ Vals.
type Select struct {
	Input Expr
	Attr  string
	Vals  []value.Value
}

// Eval implements Expr.
func (s Select) Eval(src Source) (*Result, error) {
	in, err := s.Input.Eval(src)
	if err != nil {
		return nil, err
	}
	found := false
	for _, c := range in.Cols {
		if c == s.Attr {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("algebra: selection attribute %s absent from input of %s", s.Attr, s)
	}
	sel := make(map[value.Value]bool, len(s.Vals))
	for _, v := range s.Vals {
		sel[v] = true
	}
	out := NewResult(in.Cols)
	for _, row := range in.Rows() {
		if sel[row[s.Attr]] {
			out.Add(row)
		}
	}
	return out, nil
}

func (s Select) String() string {
	parts := make([]string, len(s.Vals))
	for i, v := range s.Vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("σ[%s∈{%s}](%s)", s.Attr, strings.Join(parts, ","), s.Input)
}

// Project keeps only the named columns.
type Project struct {
	Input Expr
	Attrs []string
}

// Eval implements Expr.
func (p Project) Eval(src Source) (*Result, error) {
	in, err := p.Input.Eval(src)
	if err != nil {
		return nil, err
	}
	have := make(map[string]bool, len(in.Cols))
	for _, c := range in.Cols {
		have[c] = true
	}
	for _, a := range p.Attrs {
		if !have[a] {
			return nil, fmt.Errorf("algebra: projection attribute %s absent from input of %s", a, p)
		}
	}
	out := NewResult(p.Attrs)
	for _, row := range in.Rows() {
		nr := make(Row, len(p.Attrs))
		for _, a := range p.Attrs {
			nr[a] = row[a]
		}
		out.Add(nr)
	}
	return out, nil
}

func (p Project) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(p.Attrs, ","), p.Input)
}

// Join is an equi-join equating Left's LeftAttrs with Right's
// RightAttrs position-wise; the output carries the columns of both
// inputs (all names distinct except for the equated pairs, which both
// appear and always hold equal values — as in the paper's view class,
// where join attributes appear in the view).
type Join struct {
	Left       Expr
	Right      Expr
	LeftAttrs  []string
	RightAttrs []string
}

// Eval implements Expr (hash join on the equated attributes).
func (j Join) Eval(src Source) (*Result, error) {
	if len(j.LeftAttrs) != len(j.RightAttrs) || len(j.LeftAttrs) == 0 {
		return nil, fmt.Errorf("algebra: malformed join attribute lists in %s", j)
	}
	l, err := j.Left.Eval(src)
	if err != nil {
		return nil, err
	}
	r, err := j.Right.Eval(src)
	if err != nil {
		return nil, err
	}
	for _, a := range j.LeftAttrs {
		if !hasCol(l.Cols, a) {
			return nil, fmt.Errorf("algebra: join attribute %s absent from left input of %s", a, j)
		}
	}
	for _, a := range j.RightAttrs {
		if !hasCol(r.Cols, a) {
			return nil, fmt.Errorf("algebra: join attribute %s absent from right input of %s", a, j)
		}
	}
	cols := append(append([]string{}, l.Cols...), r.Cols...)
	out := NewResult(cols)
	index := make(map[string][]Row)
	for _, row := range r.Rows() {
		index[encodeRow(j.RightAttrs, row)] = append(index[encodeRow(j.RightAttrs, row)], row)
	}
	for _, lrow := range l.Rows() {
		k := encodeRow(j.LeftAttrs, lrow)
		for _, rrow := range index[k] {
			nr := make(Row, len(cols))
			for c, v := range lrow {
				nr[c] = v
			}
			for c, v := range rrow {
				nr[c] = v
			}
			out.Add(nr)
		}
	}
	return out, nil
}

func hasCol(cols []string, c string) bool {
	for _, x := range cols {
		if x == c {
			return true
		}
	}
	return false
}

func (j Join) String() string {
	pairs := make([]string, len(j.LeftAttrs))
	for i := range j.LeftAttrs {
		pairs[i] = j.LeftAttrs[i] + "=" + j.RightAttrs[i]
	}
	return fmt.Sprintf("(%s ⋈[%s] %s)", j.Left, strings.Join(pairs, ","), j.Right)
}
