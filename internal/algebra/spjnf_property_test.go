package algebra

import (
	"fmt"
	"math/rand"
	"testing"

	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
)

// randSource builds a random two- or three-relation chain instance:
// R0 references R1 (and R1 references R2), all columns globally unique,
// with random contents that satisfy the joins often enough to produce
// non-empty results.
func randSource(rng *rand.Rand, relations int) (*mapSource, []Join) {
	keyVals := func(n int, prefix string) []value.Value {
		out := make([]value.Value, n)
		for i := range out {
			out[i] = value.NewString(fmt.Sprintf("%s%d", prefix, i))
		}
		return out
	}
	src := &mapSource{schemas: map[string]*schema.Relation{}, tuples: map[string][]tuple.T{}}
	var rels []*schema.Relation
	for i := 0; i < relations; i++ {
		name := fmt.Sprintf("T%d", i)
		keyDom := schema.MustDomain(fmt.Sprintf("K%dDom", i), keyVals(4, fmt.Sprintf("k%d_", i))...)
		payDom := schema.MustDomain(fmt.Sprintf("P%dDom", i), keyVals(3, fmt.Sprintf("p%d_", i))...)
		attrs := []schema.Attribute{
			{Name: fmt.Sprintf("K%d", i), Domain: keyDom},
			{Name: fmt.Sprintf("P%d", i), Domain: payDom},
		}
		if i > 0 {
			// Previous relation's foreign key points here; this one
			// carries nothing extra.
			_ = attrs
		}
		if i < relations-1 {
			nextKeyDom := schema.MustDomain(fmt.Sprintf("F%dDom", i), keyVals(4, fmt.Sprintf("k%d_", i+1))...)
			attrs = append(attrs, schema.Attribute{Name: fmt.Sprintf("F%d", i), Domain: nextKeyDom})
		}
		rel := schema.MustRelation(name, attrs, []string{fmt.Sprintf("K%d", i)})
		src.schemas[name] = rel
		rels = append(rels, rel)
	}
	// Populate: keys unique per relation; foreign keys random.
	for i, rel := range rels {
		keyDom, _ := rel.Attribute(fmt.Sprintf("K%d", i))
		for k := 0; k < keyDom.Domain.Size(); k++ {
			if rng.Intn(4) == 0 {
				continue // leave some keys absent
			}
			vals := make([]value.Value, rel.Arity())
			for ai, a := range rel.Attributes() {
				switch ai {
				case 0:
					vals[ai] = a.Domain.At(k)
				default:
					vals[ai] = a.Domain.At(rng.Intn(a.Domain.Size()))
				}
			}
			src.tuples[rel.Name()] = append(src.tuples[rel.Name()], tuple.MustNew(rel, vals...))
		}
	}
	var joins []Join
	for i := 0; i+1 < relations; i++ {
		joins = append(joins, Join{
			LeftAttrs:  []string{fmt.Sprintf("F%d", i)},
			RightAttrs: []string{fmt.Sprintf("K%d", i+1)},
		})
	}
	return src, joins
}

// randExpr builds a random in-class expression over the chain: joins in
// fixed order, selections and projections sprinkled anywhere, with all
// join attributes kept by every projection.
func randExpr(rng *rand.Rand, src *mapSource, joins []Join) Expr {
	relations := len(src.schemas)
	mustKeep := map[string]bool{}
	for _, j := range joins {
		mustKeep[j.LeftAttrs[0]] = true
		mustKeep[j.RightAttrs[0]] = true
	}
	decorate := func(e Expr, cols []string) (Expr, []string) {
		// Random selection on a random column.
		if len(cols) > 0 && rng.Intn(2) == 0 {
			attr := cols[rng.Intn(len(cols))]
			dom := domainOf(src, attr)
			if dom != nil {
				n := rng.Intn(dom.Size()-1) + 1
				vals := append([]value.Value{}, dom.Values()...)
				rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
				e = Select{Input: e, Attr: attr, Vals: vals[:n]}
			}
		}
		// Random projection keeping join attributes.
		if rng.Intn(3) == 0 {
			var keep []string
			for _, c := range cols {
				if mustKeep[c] || rng.Intn(2) == 0 {
					keep = append(keep, c)
				}
			}
			if len(keep) > 0 && len(keep) < len(cols) {
				e = Project{Input: e, Attrs: keep}
				cols = keep
			}
		}
		return e, cols
	}

	var e Expr = Rel{Name: "T0"}
	cols := src.schemas["T0"].AttributeNames()
	e, cols = decorate(e, cols)
	for i := 1; i < relations; i++ {
		name := fmt.Sprintf("T%d", i)
		var right Expr = Rel{Name: name}
		rcols := src.schemas[name].AttributeNames()
		right, rcols = decorate(right, rcols)
		e = Join{Left: e, Right: right,
			LeftAttrs: joins[i-1].LeftAttrs, RightAttrs: joins[i-1].RightAttrs}
		cols = append(cols, rcols...)
		e, cols = decorate(e, cols)
	}
	return e
}

// domainOf finds the domain of a (globally unique) column.
func domainOf(src *mapSource, col string) *schema.Domain {
	for _, rel := range src.schemas {
		if a, ok := rel.Attribute(col); ok {
			return a.Domain
		}
	}
	return nil
}

// TestSPJNFPropertyRandomExpressions sweeps random in-class SPJ
// expressions and checks the normalization theorem on each: the SPJNF
// form evaluates to exactly the original's result.
func TestSPJNFPropertyRandomExpressions(t *testing.T) {
	nonEmpty := 0
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		relations := 2 + rng.Intn(2)
		src, joins := randSource(rng, relations)
		expr := randExpr(rng, src, joins)

		want, err := expr.Eval(src)
		if err != nil {
			t.Fatalf("seed %d: eval original %s: %v", seed, expr, err)
		}
		n, err := Normalize(expr, src)
		if err != nil {
			t.Fatalf("seed %d: normalize %s: %v", seed, expr, err)
		}
		got, err := n.Expr().Eval(src)
		if err != nil {
			t.Fatalf("seed %d: eval SPJNF %s: %v", seed, n, err)
		}
		if !want.Equal(got) {
			t.Fatalf("seed %d: SPJNF differs for %s\noriginal: %v\nnormal:   %v",
				seed, expr, want.Rows(), got.Rows())
		}
		if want.Len() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 10 {
		t.Fatalf("workload too degenerate: only %d non-empty results", nonEmpty)
	}
}
