package value

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{Int, "int"},
		{String, "string"},
		{Bool, "bool"},
		{Invalid, "invalid"},
		{Kind(99), "invalid"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	i := NewInt(-42)
	if i.Kind() != Int || i.Int() != -42 || !i.IsValid() {
		t.Errorf("NewInt broken: %v", i)
	}
	s := NewString("hello")
	if s.Kind() != String || s.Str() != "hello" {
		t.Errorf("NewString broken: %v", s)
	}
	b := NewBool(true)
	if b.Kind() != Bool || !b.Bool() {
		t.Errorf("NewBool broken: %v", b)
	}
	var zero Value
	if zero.IsValid() {
		t.Error("zero Value should be invalid")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"Int on string", func() { NewString("x").Int() }},
		{"Str on int", func() { NewInt(1).Str() }},
		{"Bool on int", func() { NewInt(1).Bool() }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", c.name)
				}
			}()
			c.fn()
		})
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(1), 1},
		{NewInt(7), NewInt(7), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
		{NewInt(1), NewString("a"), -1}, // cross-kind orders by kind
		{NewString("a"), NewBool(true), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d (antisymmetry)", c.b, c.a, got, -c.want)
		}
		if (c.a.Compare(c.b) < 0) != c.a.Less(c.b) {
			t.Errorf("Less(%v, %v) disagrees with Compare", c.a, c.b)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	vals := []Value{
		NewInt(0), NewInt(42), NewInt(-7), NewInt(1 << 60),
		NewString(""), NewString("New York"), NewString("with\nnewline"), NewString(`quo"te`),
		NewBool(true), NewBool(false),
	}
	for _, v := range vals {
		enc := v.Encode()
		if strings.ContainsRune(enc, '\n') {
			t.Errorf("Encode(%v) contains newline: %q", v, enc)
		}
		got, err := Decode(enc)
		if err != nil {
			t.Errorf("Decode(%q): %v", enc, err)
			continue
		}
		if got != v {
			t.Errorf("round trip %v -> %q -> %v", v, enc, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{"", "x1", "i", "inotanumber", "bX", "s", `sunterminated`, "!"}
	for _, enc := range bad {
		if _, err := Decode(enc); err == nil {
			t.Errorf("Decode(%q) should fail", enc)
		}
	}
}

func TestEncodeInjective(t *testing.T) {
	vals := []Value{
		NewInt(1), NewInt(-1), NewString("1"), NewString("i1"), NewString("bT"),
		NewBool(true), NewBool(false), NewString("true"), NewString(""),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		enc := v.Encode()
		if prev, dup := seen[enc]; dup {
			t.Errorf("Encode collision between %v and %v: %q", prev, v, enc)
		}
		seen[enc] = v
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(42), "42"},
		{NewString("NY"), "'NY'"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{Value{}, "<invalid>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		lit  string
		want Value
	}{
		{"42", NewInt(42)},
		{"-3", NewInt(-3)},
		{"'abc'", NewString("abc")},
		{`"abc"`, NewString("abc")},
		{"true", NewBool(true)},
		{"false", NewBool(false)},
	}
	for _, c := range cases {
		got, err := Parse(c.lit)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.lit, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.lit, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "12x", "'unclosed"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

// randomValue generates an arbitrary valid Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(3) {
	case 0:
		return NewInt(r.Int63() - (1 << 62))
	case 1:
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Intn(96) + 32)
		}
		return NewString(string(b))
	default:
		return NewBool(r.Intn(2) == 0)
	}
}

// valueGen adapts randomValue to testing/quick.
type valueGen struct{ V Value }

// Generate implements quick.Generator.
func (valueGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valueGen{V: randomValue(r)})
}

func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(g valueGen) bool {
		dec, err := Decode(g.V.Encode())
		return err == nil && dec == g.V
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareTotalOrder(t *testing.T) {
	f := func(a, b, c valueGen) bool {
		// Antisymmetry.
		if a.V.Compare(b.V) != -b.V.Compare(a.V) {
			return false
		}
		// Reflexivity.
		if a.V.Compare(a.V) != 0 {
			return false
		}
		// Transitivity on a sorted triple.
		vals := []Value{a.V, b.V, c.V}
		sort.Slice(vals, func(i, j int) bool { return vals[i].Less(vals[j]) })
		return vals[0].Compare(vals[2]) <= 0 && vals[0].Compare(vals[1]) <= 0 && vals[1].Compare(vals[2]) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareConsistentWithEquality(t *testing.T) {
	f := func(a, b valueGen) bool {
		return (a.V.Compare(b.V) == 0) == (a.V == b.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
