// Package value defines the scalar values stored in relations.
//
// The paper's data model is untyped beyond "a value from a (finite)
// domain"; for a practical engine we support three scalar kinds —
// integers, strings and booleans — with a total order inside each kind
// and a canonical, injective text encoding used for hashing and for
// building tuple keys.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	Invalid Kind = iota
	Int
	String
	Bool
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case String:
		return "string"
	case Bool:
		return "bool"
	default:
		return "invalid"
	}
}

// A Value is an immutable scalar. The zero Value has Kind Invalid and
// is used to signal "no value"; it never appears inside a stored tuple.
//
// Value is comparable with == and usable as a map key.
type Value struct {
	kind Kind
	i    int64  // payload for Int and Bool (0/1)
	s    string // payload for String
}

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: Int, i: i} }

// NewString returns a string value.
func NewString(s string) Value { return Value{kind: String, s: s} }

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: Bool, i: i}
}

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether v holds a value of a real kind.
func (v Value) IsValid() bool { return v.kind != Invalid }

// Int returns the integer payload. It panics if v is not an Int.
func (v Value) Int() int64 {
	if v.kind != Int {
		panic(fmt.Sprintf("value: Int() on %s value", v.kind))
	}
	return v.i
}

// Str returns the string payload. It panics if v is not a String.
func (v Value) Str() string {
	if v.kind != String {
		panic(fmt.Sprintf("value: Str() on %s value", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload. It panics if v is not a Bool.
func (v Value) Bool() bool {
	if v.kind != Bool {
		panic(fmt.Sprintf("value: Bool() on %s value", v.kind))
	}
	return v.i != 0
}

// Compare orders values. Values of different kinds order by kind; this
// never happens between values of one attribute (domains are
// homogeneous) but gives Value a total order overall.
// The result is -1, 0 or +1.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case Int, Bool:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		}
		return 0
	case String:
		return strings.Compare(v.s, w.s)
	default:
		return 0
	}
}

// Less reports whether v orders strictly before w.
func (v Value) Less(w Value) bool { return v.Compare(w) < 0 }

// Encode returns a canonical, injective text encoding of v. Encodings
// of distinct values are distinct even across kinds, and the encoding
// contains no newline, so joining encodings with '\n' yields an
// injective encoding of value sequences.
func (v Value) Encode() string {
	switch v.kind {
	case Int:
		return "i" + strconv.FormatInt(v.i, 10)
	case Bool:
		if v.i != 0 {
			return "bT"
		}
		return "bF"
	case String:
		return "s" + strconv.Quote(v.s)
	default:
		return "!"
	}
}

// Decode parses an encoding produced by Encode.
func Decode(enc string) (Value, error) {
	if enc == "" {
		return Value{}, fmt.Errorf("value: empty encoding")
	}
	switch enc[0] {
	case 'i':
		i, err := strconv.ParseInt(enc[1:], 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad int encoding %q: %v", enc, err)
		}
		return NewInt(i), nil
	case 'b':
		switch enc {
		case "bT":
			return NewBool(true), nil
		case "bF":
			return NewBool(false), nil
		}
		return Value{}, fmt.Errorf("value: bad bool encoding %q", enc)
	case 's':
		s, err := strconv.Unquote(enc[1:])
		if err != nil {
			return Value{}, fmt.Errorf("value: bad string encoding %q: %v", enc, err)
		}
		return NewString(s), nil
	default:
		return Value{}, fmt.Errorf("value: unknown encoding %q", enc)
	}
}

// String renders v for humans: 42, 'New York', true.
func (v Value) String() string {
	switch v.kind {
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Bool:
		return strconv.FormatBool(v.i != 0)
	case String:
		return "'" + v.s + "'"
	default:
		return "<invalid>"
	}
}

// Parse interprets a literal as a Value: quoted strings ('x' or "x"),
// true/false booleans, and otherwise integers.
func Parse(lit string) (Value, error) {
	if lit == "" {
		return Value{}, fmt.Errorf("value: empty literal")
	}
	if (lit[0] == '\'' || lit[0] == '"') && len(lit) >= 2 && lit[len(lit)-1] == lit[0] {
		return NewString(lit[1 : len(lit)-1]), nil
	}
	switch lit {
	case "true":
		return NewBool(true), nil
	case "false":
		return NewBool(false), nil
	}
	i, err := strconv.ParseInt(lit, 10, 64)
	if err != nil {
		return Value{}, fmt.Errorf("value: cannot parse literal %q", lit)
	}
	return NewInt(i), nil
}
