package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/obs"
	"viewupdate/internal/persist"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/wal"
)

// ManifestFile is the shard-map manifest inside the store directory; it
// records the shard count and the schema's inclusion dependencies
// (which the per-shard snapshots deliberately omit — see below).
const ManifestFile = "shardmap.json"

// manifestFormat is the current manifest layout.
const manifestFormat = 1

// A Manifest pins the store's partitioning so an Open with the wrong
// -shards cannot scatter keys across a different map.
type Manifest struct {
	Format int `json:"format"`
	Shards int `json:"shards"`
	// Inclusions are the global schema's inclusion dependencies. They
	// live here, not in the shard snapshots: a shard holds an arbitrary
	// horizontal slice of every relation, so inclusion dependencies are
	// only meaningful — and only enforced — against the global state.
	Inclusions []persist.InclusionJSON `json:"inclusions,omitempty"`
}

// Options tune a Store.
type Options struct {
	// Sync is the per-shard WAL sync policy (default wal.SyncOnCommit).
	Sync wal.SyncPolicy
	// WrapWAL, when set, wraps shard i's WAL media before the log
	// writes to it — the chaos harness's crash-injection hook.
	WrapWAL func(shard int, f wal.File) wal.File
}

// A RecoveryReport describes what Open found and repaired across the
// shard fleet.
type RecoveryReport struct {
	// Shards is the fleet size from the manifest.
	Shards int
	// Replayed counts committed records re-applied from shard WALs.
	Replayed int
	// Skipped counts committed records already folded into their
	// shard's snapshot (seq <= that snapshot's watermark).
	Skipped int
	// Discarded counts translation records without a commit marker.
	Discarded int
	// PreparesCommitted counts cross-shard prepare records that
	// resolved to commit (via a resolve marker or a decision record on
	// the coordinator shard).
	PreparesCommitted int
	// PreparesAborted counts in-doubt prepares rolled back under
	// presumed abort: durable on their shard, but no decision anywhere.
	// By protocol order (ack strictly after the decision is durable)
	// every such commit was never acknowledged.
	PreparesAborted int
	// OrphansPruned counts tuples dropped because a crash between
	// shard fsyncs left them referencing a parent that never became
	// durable. The commit fence (see docs/SHARDING.md) guarantees such
	// tuples were never part of an acknowledged commit.
	OrphansPruned int
	// InclusionsSkipped counts manifest inclusion dependencies naming
	// relations absent from every shard snapshot — the residue of a
	// crash between a DDL checkpoint's manifest rename and its
	// snapshot writes. The DDL was never acknowledged.
	InclusionsSkipped int
	// TornShards counts shards whose WAL had a damaged tail truncated.
	TornShards int
	// MaxSeq is the highest global sequence number recovered.
	MaxSeq uint64
}

// String renders the report for logs.
func (r RecoveryReport) String() string {
	return fmt.Sprintf("shards %d: replayed %d, skipped %d, discarded %d, prepares committed %d aborted %d, orphans pruned %d, torn shards %d, max seq %d",
		r.Shards, r.Replayed, r.Skipped, r.Discarded, r.PreparesCommitted, r.PreparesAborted, r.OrphansPruned, r.TornShards, r.MaxSeq)
}

// A Store is the durable side of an N-way sharded engine: one global
// in-memory database (the authority for translation, validation and
// reads) partitioned into N shard databases, each journaled by its own
// WAL and snapshot under dir/shard-<i>/. Sequence numbers are global —
// one counter spans all shards — so recovery can merge the per-shard
// logs back into the exact memory order commits applied in.
//
// The Store does not serialize memory application itself; the engine
// holds its state lock across validation + memory apply + sequence
// allocation, then journals outside the lock (that is what lets N
// fsync streams proceed in parallel). Apply is the synchronous
// exception used by the script/session path.
type Store struct {
	dir  string
	m    *Map
	opts Options

	db    *storage.Database   // global authoritative state
	shsch *schema.Database    // shard schema: same *Relation pointers, no inclusions
	dbs   []*storage.Database // per-shard partitions of db
	logs  []*wal.Log

	seq atomic.Uint64 // global sequence counter

	// snapSeq is the snapshot floor: the highest per-shard snapshot
	// watermark. Commits at or below it may be folded into a snapshot on
	// their shard and can no longer be reassembled from the WALs, so the
	// replication source answers stream requests below it with
	// "snapshot required".
	snapSeq atomic.Uint64

	// onCommit, when set, receives every commit landed by the
	// synchronous Apply path (script/session statements) right after it
	// became durable: the global sequence number, the idempotency key
	// (empty on this path) and the whole translation. The engine's
	// pipelined commits feed the replication stream through the acker
	// instead; this hook covers the one path the acker never sees.
	onCommit func(seq uint64, key string, tr *update.Translation)

	brokenMu sync.Mutex
	broken   []error // per-shard: first journaling failure; memory may be ahead of media

	applyMu sync.Mutex // serializes the synchronous Apply path

	report RecoveryReport
	keys   [][]string // per-shard recovered idempotency keys, log order
}

func shardDir(dir string, i int) string { return filepath.Join(dir, fmt.Sprintf("shard-%d", i)) }

// Create initializes dir as a new N-way sharded store holding db's
// current state. It fails if dir already holds a manifest.
func Create(dir string, n int, db *storage.Database, opts Options) (*Store, error) {
	m, err := NewMap(n)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	manPath := filepath.Join(dir, ManifestFile)
	if _, err := os.Stat(manPath); err == nil {
		return nil, fmt.Errorf("shard: store already exists at %s", dir)
	}
	s := &Store{dir: dir, m: m, opts: opts, db: db, broken: make([]error, n), keys: make([][]string, n)}
	if err := s.buildShardDBs(); err != nil {
		return nil, err
	}
	if err := s.writeManifest(); err != nil {
		return nil, err
	}
	s.logs = make([]*wal.Log, n)
	for i := 0; i < n; i++ {
		if err := os.MkdirAll(shardDir(dir, i), 0o755); err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
		if err := s.writeShardSnapshot(i, 0); err != nil {
			return nil, err
		}
		if err := s.openLog(i); err != nil {
			return nil, err
		}
	}
	s.report = RecoveryReport{Shards: n}
	obs.Inc("shard.store.created")
	return s, nil
}

// Open recovers the sharded store at dir. want, when non-zero, must
// match the manifest's shard count — refusing to re-partition an
// existing store under a different map. Missing manifest reports
// persist.ErrNoStore so the caller can fall back to Create.
func Open(dir string, want int, opts Options) (*Store, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if want != 0 && man.Shards != want {
		return nil, fmt.Errorf("shard: store at %s has %d shards, -shards asked for %d (the shard map is fixed at create time)", dir, man.Shards, want)
	}
	m, err := NewMap(man.Shards)
	if err != nil {
		return nil, fmt.Errorf("shard: manifest: %w", err)
	}
	n := man.Shards
	s := &Store{dir: dir, m: m, opts: opts, broken: make([]error, n), keys: make([][]string, n)}
	s.report = RecoveryReport{Shards: n}

	// Phase 1: load every shard snapshot and rebuild the global schema
	// (sans inclusions) as the union of their declarations. The union
	// matters: a crash mid-checkpoint can leave shards at mixed schema
	// versions, and new relations are empty at DDL time, so the union
	// is always the newest schema.
	snaps := make([]*persist.Snapshot, n)
	for i := 0; i < n; i++ {
		snaps[i], err = persist.ReadSnapshotFile(filepath.Join(shardDir(dir, i), persist.SnapshotFile))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if snaps[i].Seq > s.snapSeq.Load() {
			s.snapSeq.Store(snaps[i].Seq)
		}
	}
	merged := mergeSnapshots(snaps)
	s.db, err = persist.Restore(merged)
	if err != nil {
		return nil, fmt.Errorf("shard: restoring merged snapshot: %w", err)
	}
	sch := s.db.Schema()

	// Phase 2: scan every shard's WAL, truncate torn tails, union the
	// decision records, and resolve each shard's committed prefix.
	results := make([]*wal.ScanResult, n)
	for i := 0; i < n; i++ {
		walPath := filepath.Join(shardDir(dir, i), persist.WALFile)
		res, err := wal.ScanFile(walPath)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if res.Torn() {
			if err := os.Truncate(walPath, res.TornAt); err != nil {
				return nil, fmt.Errorf("shard %d: truncating torn WAL tail: %w", i, err)
			}
			s.report.TornShards++
		}
		results[i] = res
	}
	decisions := map[uint64]bool{}
	for _, res := range results {
		for seq := range res.Decisions() {
			decisions[seq] = true
		}
	}
	type shardRec struct {
		shard int
		rec   wal.Record
	}
	var all []shardRec
	maxSeq := uint64(0)
	for i, res := range results {
		committed, discarded, inDoubt := res.CommittedWith(decisions)
		s.report.Discarded += discarded
		s.report.PreparesAborted += inDoubt
		if res.MaxSeq() > maxSeq {
			maxSeq = res.MaxSeq()
		}
		if snaps[i].Seq > maxSeq {
			maxSeq = snaps[i].Seq
		}
		for _, rec := range committed {
			if rec.Kind == wal.KindPrepare {
				s.report.PreparesCommitted++
			}
			if rec.Key != "" {
				s.keys[i] = append(s.keys[i], rec.Key)
			}
			if rec.Seq <= snaps[i].Seq {
				s.report.Skipped++
				continue
			}
			all = append(all, shardRec{shard: i, rec: rec})
		}
	}

	// Phase 3: replay in global sequence order. Per-shard log order can
	// diverge from the order memory applied in (each shard fsyncs
	// independently), but global seqs — allocated under the engine's
	// state lock — recover the true total order. Inclusions are not
	// registered yet, so replay never trips a dependency check that the
	// original (globally validated) commit order satisfied.
	sort.SliceStable(all, func(a, b int) bool { return all[a].rec.Seq < all[b].rec.Seq })
	for _, sr := range all {
		tr, err := wal.DecodeTranslation(sch, sr.rec)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", sr.shard, err)
		}
		if err := s.db.Apply(tr); err != nil {
			return nil, fmt.Errorf("shard %d: replaying seq %d: %w", sr.shard, sr.rec.Seq, err)
		}
		s.report.Replayed++
	}

	// Phase 4: prune orphans, then register inclusions. A crash between
	// shard fsyncs can persist a child while its (applied but unsynced)
	// parent on another shard is lost; the commit fence guarantees no
	// such child was ever acknowledged, so dropping it restores
	// consistency without losing acked data.
	deps := make([]schema.InclusionDependency, 0, len(man.Inclusions))
	for _, ij := range man.Inclusions {
		if sch.Relation(ij.Child) == nil || sch.Relation(ij.Parent) == nil {
			// Residue of a crash between a DDL checkpoint's manifest
			// rename and its snapshot writes; the DDL was never acked.
			s.report.InclusionsSkipped++
			continue
		}
		deps = append(deps, schema.InclusionDependency{Child: ij.Child, ChildAttrs: ij.ChildAttrs, Parent: ij.Parent})
	}
	pruned, err := pruneOrphans(s.db, deps)
	if err != nil {
		return nil, err
	}
	s.report.OrphansPruned = pruned
	for _, d := range deps {
		if err := sch.AddInclusion(d); err != nil {
			return nil, fmt.Errorf("shard: manifest inclusion %s: %w", d, err)
		}
	}
	if err := s.db.SyncSchema(); err != nil {
		return nil, fmt.Errorf("shard: rebuilding reference index: %w", err)
	}
	if err := s.db.CheckAllInclusions(); err != nil {
		return nil, fmt.Errorf("shard: recovered state inconsistent: %w", err)
	}

	// Phase 5: partition the recovered global state into the shard
	// databases and reopen the logs.
	if err := s.buildShardDBs(); err != nil {
		return nil, err
	}
	s.logs = make([]*wal.Log, n)
	for i := 0; i < n; i++ {
		if err := s.openLog(i); err != nil {
			return nil, err
		}
	}
	s.seq.Store(maxSeq)
	s.report.MaxSeq = maxSeq
	obs.Inc("shard.store.recovered")
	obs.Add("shard.store.replayed", int64(s.report.Replayed))
	return s, nil
}

// mergeSnapshots unions shard snapshots into one global snapshot with
// no inclusions (those come from the manifest, after replay).
func mergeSnapshots(snaps []*persist.Snapshot) *persist.Snapshot {
	merged := &persist.Snapshot{Format: persist.FormatVersion, Tuples: map[string][][]string{}}
	seenDom := map[string]bool{}
	seenRel := map[string]bool{}
	for _, snap := range snaps {
		for _, dj := range snap.Domains {
			if !seenDom[dj.Name] {
				seenDom[dj.Name] = true
				merged.Domains = append(merged.Domains, dj)
			}
		}
		for _, rj := range snap.Relations {
			if !seenRel[rj.Name] {
				seenRel[rj.Name] = true
				merged.Relations = append(merged.Relations, rj)
			}
		}
		for rn, rows := range snap.Tuples {
			merged.Tuples[rn] = append(merged.Tuples[rn], rows...)
		}
	}
	return merged
}

// pruneOrphans deletes, to a fixpoint, every child tuple referencing a
// parent key that is absent (or itself being pruned). Called before
// inclusions are registered on db's schema, so the deletions apply
// without constraint interference.
func pruneOrphans(db *storage.Database, deps []schema.InclusionDependency) (int, error) {
	orphans := map[string]tuple.T{}  // by tuple encoding
	deadParents := map[string]bool{} // by tuple.Key() form: "rel\nkeyenc"
	probeFor := func(d schema.InclusionDependency, t tuple.T) (string, error) {
		keyEnc, err := t.ProjectEncode(d.ChildAttrs)
		if err != nil {
			return "", fmt.Errorf("shard: inclusion %s on %s: %w", d, t, err)
		}
		if keyEnc == "" {
			return d.Parent, nil
		}
		return d.Parent + "\n" + keyEnc, nil
	}
	for changed := true; changed; {
		changed = false
		for _, d := range deps {
			parentExt := db.Extension(d.Parent)
			for _, t := range db.Tuples(d.Child) {
				if _, gone := orphans[t.Encode()]; gone {
					continue
				}
				probe, err := probeFor(d, t)
				if err != nil {
					return 0, err
				}
				alive := parentExt != nil && parentExt.ContainsKeyEncoding(probe) && !deadParents[probe]
				if !alive {
					orphans[t.Encode()] = t
					deadParents[t.Key()] = true
					changed = true
				}
			}
		}
	}
	if len(orphans) == 0 {
		return 0, nil
	}
	tr := update.NewTranslation()
	for _, t := range orphans {
		tr.Add(update.NewDelete(t))
	}
	if err := db.Apply(tr); err != nil {
		return 0, fmt.Errorf("shard: pruning %d orphans: %w", len(orphans), err)
	}
	obs.Add("shard.store.orphans_pruned", int64(len(orphans)))
	return len(orphans), nil
}

// buildShardDBs (re)builds the per-shard databases as partitions of the
// global database. The shard schema shares the global schema's
// *Relation pointers (extensions match relations by identity) but
// carries no inclusion dependencies: a shard's slice of a child
// relation routinely references parents on other shards.
func (s *Store) buildShardDBs() error {
	sch := s.db.Schema()
	shsch := schema.NewDatabase()
	for _, name := range sch.RelationNames() {
		if err := shsch.AddRelation(sch.Relation(name)); err != nil {
			return fmt.Errorf("shard: %w", err)
		}
	}
	s.shsch = shsch
	s.dbs = make([]*storage.Database, s.m.N())
	parts := make([]*update.Translation, s.m.N())
	for i := range parts {
		s.dbs[i] = storage.Open(shsch)
		parts[i] = update.NewTranslation()
	}
	for _, name := range sch.RelationNames() {
		for _, t := range s.db.Tuples(name) {
			parts[s.m.Of(t)].Add(update.NewInsert(t))
		}
	}
	for i, p := range parts {
		if p.Len() == 0 {
			continue
		}
		if err := s.dbs[i].Apply(p); err != nil {
			return fmt.Errorf("shard %d: partitioning: %w", i, err)
		}
	}
	return nil
}

func (s *Store) openLog(i int) error {
	path := filepath.Join(shardDir(s.dir, i), persist.WALFile)
	log, size, err := wal.OpenFile(path, s.opts.Sync)
	if err != nil {
		return err
	}
	if s.opts.WrapWAL != nil {
		f, ferr := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			return fmt.Errorf("shard: %w", ferr)
		}
		log.Close()
		s.logs[i] = wal.NewAt(s.opts.WrapWAL(i, f), s.opts.Sync, size)
		return nil
	}
	s.logs[i] = log
	return nil
}

func readManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w (no %s in %s)", persist.ErrNoStore, ManifestFile, dir)
	}
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("shard: decoding manifest: %w", err)
	}
	if man.Format != manifestFormat {
		return nil, fmt.Errorf("shard: unsupported manifest format %d", man.Format)
	}
	return &man, nil
}

func (s *Store) writeManifest() error {
	man := Manifest{Format: manifestFormat, Shards: s.m.N()}
	for _, d := range s.db.Schema().Inclusions() {
		man.Inclusions = append(man.Inclusions, persist.InclusionJSON{
			Child: d.Child, ChildAttrs: d.ChildAttrs, Parent: d.Parent,
		})
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encoding manifest: %w", err)
	}
	path := filepath.Join(s.dir, ManifestFile)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return fmt.Errorf("shard: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("shard: syncing manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	return syncDir(s.dir)
}

func (s *Store) writeShardSnapshot(i int, watermark uint64) error {
	snap, err := persist.Capture(s.dbs[i])
	if err != nil {
		return fmt.Errorf("shard %d: %w", i, err)
	}
	snap.Seq = watermark
	dir := shardDir(s.dir, i)
	path := filepath.Join(dir, persist.SnapshotFile)
	tmp := path + ".tmp"
	if err := persist.WriteSnapshotFile(tmp, snap); err != nil {
		return fmt.Errorf("shard %d: %w", i, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("shard %d: %w", i, err)
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("shard: syncing %s: %w", dir, err)
	}
	return nil
}

// DB returns the global authoritative database.
func (s *Store) DB() *storage.Database { return s.db }

// ShardDB returns shard i's partition (tests and the engine's
// committers use it; all writes go through the engine's state lock).
func (s *Store) ShardDB(i int) *storage.Database { return s.dbs[i] }

// Map returns the partitioning function.
func (s *Store) Map() *Map { return s.m }

// N returns the shard count.
func (s *Store) N() int { return s.m.N() }

// Report returns the recovery report from Open (zero for Create).
func (s *Store) Report() RecoveryReport { return s.report }

// KeysByShard returns, per shard, the idempotency keys of the committed
// records that shard's WAL held at Open, in log order.
func (s *Store) KeysByShard() [][]string { return s.keys }

// NextSeq allocates the next global sequence number. The engine calls
// it under its state lock, so sequence order equals memory-apply order.
func (s *Store) NextSeq() uint64 { return s.seq.Add(1) }

// Seq returns the last allocated global sequence number.
func (s *Store) Seq() uint64 { return s.seq.Load() }

// MarkBroken records a journaling failure on shard i: its media no
// longer reflects applied memory, so every further append on i is
// refused and the engine degrades until restart (recovery re-derives
// memory from the durable prefix).
func (s *Store) MarkBroken(i int, err error) {
	s.brokenMu.Lock()
	defer s.brokenMu.Unlock()
	if s.broken[i] == nil {
		s.broken[i] = err
		obs.Inc("shard.store.broken")
	}
}

// Broken returns the first journaling failure recorded on shard i, or
// nil.
func (s *Store) Broken(i int) error {
	s.brokenMu.Lock()
	defer s.brokenMu.Unlock()
	return s.broken[i]
}

// BrokenAny returns the first journaling failure across the fleet.
func (s *Store) BrokenAny() error {
	s.brokenMu.Lock()
	defer s.brokenMu.Unlock()
	for _, err := range s.broken {
		if err != nil {
			return err
		}
	}
	return nil
}

// AppendBatch journals recs on shard i's WAL in one write (+ at most
// one fsync, per policy). On failure the shard is marked broken: the
// records may be partially on media while memory has already moved, so
// only a restart (and recovery) reconciles the two.
func (s *Store) AppendBatch(i int, recs []wal.Record) (wal.BatchStats, error) {
	if err := s.Broken(i); err != nil {
		return wal.BatchStats{}, err
	}
	stats, err := s.logs[i].AppendBatchStats(recs)
	if err != nil {
		s.MarkBroken(i, err)
		return stats, err
	}
	return stats, nil
}

// CommitCross runs the two-phase journal protocol for a cross-shard
// commit whose memory application already happened: parallel prepare
// records (each fsynced) on every participant, then the decision record
// (fsynced) on the coordinator shard, then best-effort resolve markers.
// decided reports whether the decision reached media — once true the
// commit survives any crash; while false, recovery presumes abort.
func (s *Store) CommitCross(xid uint64, key string, route *Route) (decided bool, err error) {
	coord := route.Home()
	var wg sync.WaitGroup
	errs := make([]error, len(route.Participants))
	for idx, p := range route.Participants {
		wg.Add(1)
		go func(idx, p int) {
			defer wg.Done()
			if berr := s.Broken(p); berr != nil {
				errs[idx] = berr
				return
			}
			rec := wal.PrepareRecord(xid, key, coord, route.Parts[p])
			if _, aerr := s.logs[p].AppendBatchStats([]wal.Record{rec}); aerr != nil {
				s.MarkBroken(p, aerr)
				errs[idx] = aerr
			}
		}(idx, p)
	}
	wg.Wait()
	for _, perr := range errs {
		if perr != nil {
			return false, fmt.Errorf("shard: cross-shard prepare: %w", perr)
		}
	}
	obs.Inc("shard.cross.prepared")
	if ferr := faultinject.Hit(faultinject.SiteShardPrepare); ferr != nil {
		// The crash window the chaos soak aims at: prepares durable,
		// no decision. Recovery rolls the commit back (presumed abort);
		// the client was never acknowledged.
		return false, fmt.Errorf("shard: %w", ferr)
	}
	if err := s.Broken(coord); err != nil {
		return false, fmt.Errorf("shard: cross-shard decision: %w", err)
	}
	if _, derr := s.logs[coord].AppendBatchStats([]wal.Record{wal.DecisionRecord(xid)}); derr != nil {
		s.MarkBroken(coord, derr)
		return false, fmt.Errorf("shard: cross-shard decision: %w", derr)
	}
	obs.Inc("shard.cross.decided")
	// Past the point of no return: the commit is durable everywhere it
	// matters. Injected errors here arm crash tests only.
	_ = faultinject.Hit(faultinject.SiteShardDecision)
	// Lazy resolve markers let each participant settle the prepare from
	// its own log at recovery. No fsync — the decision already carries
	// durability — and failures only cost a decision-table lookup later.
	for _, p := range route.Participants {
		if s.Broken(p) == nil {
			if aerr := s.logs[p].Append(wal.ResolveRecord(xid)); aerr != nil {
				s.MarkBroken(p, aerr)
			}
		}
	}
	return true, nil
}

// invert returns the translation undoing tr.
func invert(tr *update.Translation) *update.Translation {
	inv := update.NewTranslation()
	for _, o := range tr.Ops() {
		switch o.Kind {
		case update.Insert:
			inv.Add(update.NewDelete(o.Tuple))
		case update.Delete:
			inv.Add(update.NewInsert(o.Tuple))
		case update.Replace:
			inv.Add(update.NewReplace(o.New, o.Old))
		}
	}
	return inv
}

// Apply is the synchronous durable commit used by the script/session
// path (the engine's pipelined commits journal through AppendBatch and
// CommitCross instead). It applies tr to the global database and the
// participant shards, then journals — translation+commit on a single
// participant, the full two-phase protocol across several. Callers
// serialize Apply against the pipelined path (the engine holds its
// state lock). On a journaling failure before the point of no return,
// memory is rolled back and the commit reports persist.ErrNotDurable.
func (s *Store) Apply(tr *update.Translation) error {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	route, err := Classify(s.m, s.db.Schema(), tr)
	if err != nil {
		return err
	}
	if len(route.Participants) == 0 {
		return nil
	}
	if err := s.db.Apply(tr); err != nil {
		return err
	}
	for _, p := range route.Participants {
		if err := s.dbs[p].Apply(route.Parts[p]); err != nil {
			// Cannot happen after the global apply succeeded (the shard
			// schema checks strictly less); treat as corruption.
			s.MarkBroken(p, err)
			return fmt.Errorf("shard %d: partition diverged: %w", p, err)
		}
	}
	rollback := func() error {
		for _, p := range route.Participants {
			if err := s.dbs[p].Apply(invert(route.Parts[p])); err != nil {
				s.MarkBroken(p, err)
				return err
			}
		}
		return s.db.Apply(invert(tr))
	}
	xid := s.NextSeq()
	if !route.Cross() {
		p := route.Participants[0]
		recs := []wal.Record{wal.EncodeTranslation(xid, tr), wal.CommitRecord(xid)}
		if _, aerr := s.AppendBatch(p, recs); aerr != nil {
			if rerr := rollback(); rerr != nil {
				return fmt.Errorf("shard: memory diverged after failed append: %v (rollback: %w)", aerr, rerr)
			}
			return fmt.Errorf("%w: %w", persist.ErrNotDurable, aerr)
		}
		if s.onCommit != nil {
			s.onCommit(xid, "", tr)
		}
		return nil
	}
	decided, cerr := s.CommitCross(xid, "", route)
	if !decided {
		if rerr := rollback(); rerr != nil {
			return fmt.Errorf("shard: memory diverged after failed 2pc: %v (rollback: %w)", cerr, rerr)
		}
		return fmt.Errorf("%w: %w", persist.ErrNotDurable, cerr)
	}
	if s.onCommit != nil {
		s.onCommit(xid, "", tr)
	}
	return nil
}

// SetOnCommit installs the synchronous-path commit hook (see the field
// doc). Call before serving; delivery runs under applyMu and must not
// call back into the store.
func (s *Store) SetOnCommit(fn func(seq uint64, key string, tr *update.Translation)) {
	s.onCommit = fn
}

// SnapshotSeq reports the snapshot floor: the highest watermark any
// shard's snapshot has been folded up to. Stream resumptions below it
// cannot be served from the WALs.
func (s *Store) SnapshotSeq() uint64 { return s.snapSeq.Load() }

// SyncSchema absorbs global schema growth (new relations from DDL) into
// the shard schema and every shard database. Inclusion dependencies
// stay global-only by design.
func (s *Store) SyncSchema() error {
	sch := s.db.Schema()
	for _, name := range sch.RelationNames() {
		if s.shsch.Relation(name) == nil {
			if err := s.shsch.AddRelation(sch.Relation(name)); err != nil {
				return fmt.Errorf("shard: %w", err)
			}
		}
	}
	for i, db := range s.dbs {
		if err := db.SyncSchema(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Checkpoint folds every shard's WAL into a fresh snapshot stamped with
// the current global sequence watermark and rewrites the manifest (DDL
// may have added inclusions). The caller must have quiesced the
// pipelines: no append may be in flight, and every decided cross-shard
// commit must have its resolve markers appended (the engine answers
// waiters only after appending them, so idle pipelines imply it).
//
// Order matters for crash safety: logs are synced first (making resolve
// markers durable, so truncating one shard's decisions cannot orphan
// another shard's prepare), then the manifest, then each snapshot, then
// the truncations. Every intermediate crash state recovers — see the
// recovery matrix in docs/SHARDING.md.
func (s *Store) Checkpoint() error {
	if err := s.BrokenAny(); err != nil {
		return fmt.Errorf("shard: refusing checkpoint on broken fleet: %w", err)
	}
	for i, log := range s.logs {
		if err := log.Sync(); err != nil {
			s.MarkBroken(i, err)
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	if err := s.writeManifest(); err != nil {
		return err
	}
	w := s.seq.Load()
	for i := range s.dbs {
		if err := s.writeShardSnapshot(i, w); err != nil {
			return err
		}
	}
	for i := range s.logs {
		if err := s.logs[i].Close(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if err := os.Truncate(filepath.Join(shardDir(s.dir, i), persist.WALFile), 0); err != nil {
			return fmt.Errorf("shard %d: resetting WAL: %w", i, err)
		}
		if err := s.openLog(i); err != nil {
			return err
		}
	}
	s.snapSeq.Store(w)
	obs.Inc("shard.store.checkpoint")
	return nil
}

// Close releases every shard's WAL after a final sync (skipped on
// sealed logs). It does not checkpoint; pair with Checkpoint for a
// graceful shutdown.
func (s *Store) Close() error {
	var first error
	for _, log := range s.logs {
		if log == nil {
			continue
		}
		if err := log.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
