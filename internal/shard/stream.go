package shard

import (
	"path/filepath"
	"sort"

	"viewupdate/internal/persist"
	"viewupdate/internal/wal"
)

// CommittedAfter reassembles the global commit sequence after cursor
// from the shard WALs on disk: every shard's log is scanned, decision
// records are unioned across the fleet (a participant's prepare
// resolves against the coordinator's decision), and the committed
// records are merged back into global sequence order. A cross-shard
// commit — one prepare record per participant, each holding that
// shard's slice of the ops — is folded into a single KindTranslation
// record per seq, parts concatenated in shard order (the same stable
// order recovery replays them in).
//
// The replication stream handler calls this when a follower's resume
// point has fallen off the in-memory backlog. Scanning races the live
// committers harmlessly: a torn tail or a translation whose commit
// marker has not reached media yet is simply not served, and the hub
// covers it once durable. Commits at or below SnapshotSeq may be
// folded away and cannot be reassembled — callers must refuse those
// resume points first.
func (s *Store) CommittedAfter(cursor uint64) ([]wal.Record, error) {
	n := s.m.N()
	results := make([]*wal.ScanResult, n)
	for i := 0; i < n; i++ {
		res, err := wal.ScanFile(filepath.Join(shardDir(s.dir, i), persist.WALFile))
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	decisions := map[uint64]bool{}
	for _, res := range results {
		for seq := range res.Decisions() {
			decisions[seq] = true
		}
	}
	type part struct {
		shard int
		rec   wal.Record
	}
	var all []part
	for i, res := range results {
		committed, _, _ := res.CommittedWith(decisions)
		for _, rec := range committed {
			if rec.Seq > cursor {
				all = append(all, part{shard: i, rec: rec})
			}
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].rec.Seq != all[b].rec.Seq {
			return all[a].rec.Seq < all[b].rec.Seq
		}
		return all[a].shard < all[b].shard
	})
	out := make([]wal.Record, 0, len(all))
	for _, p := range all {
		if len(out) > 0 && out[len(out)-1].Seq == p.rec.Seq {
			last := &out[len(out)-1]
			last.Ops = append(last.Ops, p.rec.Ops...)
			if last.Key == "" {
				last.Key = p.rec.Key
			}
			continue
		}
		out = append(out, wal.Record{
			Seq:  p.rec.Seq,
			Kind: wal.KindTranslation,
			Ops:  append([]wal.OpRecord(nil), p.rec.Ops...),
			Key:  p.rec.Key,
		})
	}
	return out, nil
}
