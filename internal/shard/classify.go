package shard

import (
	"sort"

	"viewupdate/internal/schema"
	"viewupdate/internal/update"
)

// A Route is the router's classification of one translation against a
// shard map: which shards hold ops (the participants), the per-shard
// op slices, and which further shards the commit must wait on for
// durability (the fence) because an inclusion edge of an added tuple
// points at a parent they own.
type Route struct {
	// Parts maps participant shard -> the slice of the translation that
	// shard applies and journals. A replacement whose key moves between
	// shards is split into a delete on the old owner and an insert on
	// the new owner; all other ops land intact on their tuple's owner.
	Parts map[int]*update.Translation
	// Participants are the shards with at least one op, ascending. A
	// translation is cross-shard iff it has more than one participant.
	Participants []int
	// Fence are the shards — disjoint from Participants, ascending —
	// whose applied-but-not-yet-durable state this commit's validity
	// may depend on: shards owning the referenced parent key of an
	// added child tuple, plus (conservatively) every other shard when a
	// parent-relation tuple is removed, since the delete's validity can
	// rest on child removals applied anywhere. The committer must not
	// acknowledge until each fence shard's durable watermark reaches
	// the applied watermark observed at validation; otherwise a crash
	// could surface an acked child whose parent never became durable,
	// and recovery's orphan pruning would silently drop the acked row.
	Fence []int
}

// Cross reports whether the translation spans more than one shard.
func (r *Route) Cross() bool { return len(r.Participants) > 1 }

// Home returns the shard that owns this translation for idempotency
// scoping and 2PC coordination: the lowest participant (0 for an empty
// translation).
func (r *Route) Home() int {
	if len(r.Participants) == 0 {
		return 0
	}
	return r.Participants[0]
}

// Classify routes tr against the map and the schema's inclusion
// dependencies. The error path only triggers on schema-inconsistent
// translations (an inclusion dependency naming attributes its child
// relation lacks).
func Classify(m *Map, sch *schema.Database, tr *update.Translation) (*Route, error) {
	r := &Route{Parts: make(map[int]*update.Translation)}
	part := func(i int) *update.Translation {
		p := r.Parts[i]
		if p == nil {
			p = update.NewTranslation()
			r.Parts[i] = p
		}
		return p
	}
	for _, o := range tr.Ops() {
		switch o.Kind {
		case update.Insert, update.Delete:
			part(m.Of(o.Tuple)).Add(o)
		case update.Replace:
			oldShard, newShard := m.Of(o.Old), m.Of(o.New)
			if oldShard == newShard {
				part(oldShard).Add(o)
			} else {
				part(oldShard).Add(update.NewDelete(o.Old))
				part(newShard).Add(update.NewInsert(o.New))
			}
		}
	}
	r.Participants = make([]int, 0, len(r.Parts))
	for i := range r.Parts {
		r.Participants = append(r.Participants, i)
	}
	sort.Ints(r.Participants)

	isParticipant := func(i int) bool {
		for _, p := range r.Participants {
			if p == i {
				return true
			}
		}
		return false
	}
	fence := map[int]bool{}
	fenceAll := false
	for _, t := range tr.Added().Slice() {
		for _, d := range sch.InclusionsFrom(t.Relation().Name()) {
			keyEnc, err := t.ProjectEncode(d.ChildAttrs)
			if err != nil {
				return nil, err
			}
			if p := m.OfParentKey(d.Parent, keyEnc); !isParticipant(p) {
				fence[p] = true
			}
		}
	}
	for _, t := range tr.Removed().Slice() {
		if len(sch.InclusionsInto(t.Relation().Name())) > 0 {
			fenceAll = true
			break
		}
	}
	if fenceAll {
		for i := 0; i < m.N(); i++ {
			if !isParticipant(i) {
				fence[i] = true
			}
		}
	}
	r.Fence = make([]int, 0, len(fence))
	for i := range fence {
		r.Fence = append(r.Fence, i)
	}
	sort.Ints(r.Fence)
	return r, nil
}
