// Package shard partitions a database across N independent shard
// instances and routes translated view updates to them.
//
// The partitioning unit is the tuple key: shard(t) = h(t.Key()) mod N,
// where t.Key() is the canonical "relation name + key values" encoding.
// The paper's translators operate on rooted SPJ join trees — "the key
// of the root is the key of the entire view" — so every root tuple,
// and with it the fast-path bulk of translated updates, lands on the
// shard its root key hashes to. An inclusion edge (a child tuple
// referencing a parent relation's key) may cross shards; the router
// classifies each translation as single-shard or cross-shard
// accordingly, and the Store journals cross-shard commits under a
// two-phase protocol. See docs/SHARDING.md.
package shard

import (
	"fmt"
	"hash/fnv"

	"viewupdate/internal/tuple"
)

// MaxShards bounds the shard count; the manifest format and the
// per-shard metric registration assume a small fixed fleet.
const MaxShards = 64

// A Map is the pure partitioning function: tuple key -> shard index.
// It is immutable and safe for concurrent use.
type Map struct {
	n int
}

// NewMap returns the map for n shards (1 <= n <= MaxShards).
func NewMap(n int) (*Map, error) {
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d outside [1,%d]", n, MaxShards)
	}
	return &Map{n: n}, nil
}

// N returns the shard count.
func (m *Map) N() int { return m.n }

// Of returns the shard owning tuple t, determined solely by t's
// relation name and key values.
func (m *Map) Of(t tuple.T) int { return m.hash(t.Key()) }

// OfParentKey returns the shard owning the parent-relation tuple whose
// key values encode to keyEnc ('\n'-joined canonical encodings, the
// same construction storage uses for its inclusion reference index).
// This is how the router locates the remote parent of an inclusion
// edge without materializing the parent tuple.
func (m *Map) OfParentKey(parentRel, keyEnc string) int {
	if keyEnc == "" {
		return m.hash(parentRel)
	}
	return m.hash(parentRel + "\n" + keyEnc)
}

func (m *Map) hash(key string) int {
	if m.n == 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(m.n))
}
