package shard

import (
	"errors"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/persist"
	"viewupdate/internal/storage"
	"viewupdate/internal/update"
	"viewupdate/internal/wal"
)

// render dumps a database as a sorted tuple listing, comparable across
// restore boundaries (encodings carry the relation name).
func render(db *storage.Database) string {
	names := append([]string(nil), db.Schema().RelationNames()...)
	sort.Strings(names)
	var lines []string
	for _, name := range names {
		for _, t := range db.Tuples(name) {
			lines = append(lines, t.Encode())
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, ";")
}

// checkPartition verifies the per-shard databases are exactly the
// map-partition of the global database.
func checkPartition(t *testing.T, st *Store) {
	t.Helper()
	total := 0
	for i := 0; i < st.N(); i++ {
		for _, name := range st.ShardDB(i).Schema().RelationNames() {
			for _, tp := range st.ShardDB(i).Tuples(name) {
				total++
				if st.Map().Of(tp) != i {
					t.Fatalf("tuple %v on shard %d, owner %d", tp, i, st.Map().Of(tp))
				}
				if !st.DB().Contains(tp) {
					t.Fatalf("shard %d holds %v, global db does not", i, tp)
				}
			}
		}
	}
	global := 0
	for _, name := range st.DB().Schema().RelationNames() {
		global += len(st.DB().Tuples(name))
	}
	if total != global {
		t.Fatalf("shards hold %d tuples, global db %d", total, global)
	}
}

func newTestStore(t *testing.T, dir string, n int, opts Options) *Store {
	t.Helper()
	sch, _, _ := fkSchema(t)
	st, err := Create(dir, n, storage.Open(sch), opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// keysOnShards returns (a, b): two parent keys owned by different
// shards under m.
func keysOnShards(t *testing.T, st *Store) (int64, int64) {
	t.Helper()
	sch := st.DB().Schema()
	p := sch.Relation("P")
	for b := int64(1); b < 500; b++ {
		if st.Map().Of(pt(t, p, b, "u")) != st.Map().Of(pt(t, p, 0, "u")) {
			return 0, b
		}
	}
	t.Fatal("no cross-shard key pair found")
	return 0, 0
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t, dir, 4, Options{Sync: wal.SyncOnCommit})
	sch := st.DB().Schema()
	p, c := sch.Relation("P"), sch.Relation("C")
	a, b := keysOnShards(t, st)
	// Single-shard commit, then a cross-shard commit (two parents on
	// different shards plus a child referencing one of them).
	if err := st.Apply(update.NewTranslation(update.NewInsert(pt(t, p, a, "u")))); err != nil {
		t.Fatal(err)
	}
	cross := update.NewTranslation(
		update.NewInsert(pt(t, p, b, "v")),
		update.NewInsert(ct(t, c, 7, a)),
	)
	if err := st.Apply(cross); err != nil {
		t.Fatal(err)
	}
	want := render(st.DB())
	checkPartition(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(dir, 0, Options{Sync: wal.SyncOnCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := render(rec.DB()); got != want {
		t.Fatalf("recovered state\n  %s\nwant\n  %s", got, want)
	}
	checkPartition(t, rec)
	if rec.N() != 4 {
		t.Fatalf("recovered %d shards, want 4", rec.N())
	}
	rep := rec.Report()
	if rep.PreparesAborted != 0 || rep.Discarded != 0 || rep.OrphansPruned != 0 {
		t.Fatalf("clean shutdown report: %s", rep)
	}
	if rep.MaxSeq != 2 || rec.Seq() != 2 {
		t.Fatalf("recovered seq %d (report max %d), want 2", rec.Seq(), rep.MaxSeq)
	}
	if err := rec.DB().CheckAllInclusions(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenShardCountMismatch(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t, dir, 4, Options{})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 3, Options{}); err == nil {
		t.Fatal("opening a 4-shard store with -shards 3 should fail")
	}
	if _, err := Open(t.TempDir(), 4, Options{}); !errors.Is(err, persist.ErrNoStore) {
		t.Fatalf("opening an empty dir: %v, want ErrNoStore", err)
	}
}

func TestCheckpointFoldsLogs(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t, dir, 4, Options{Sync: wal.SyncOnCommit})
	sch := st.DB().Schema()
	p := sch.Relation("P")
	a, b := keysOnShards(t, st)
	if err := st.Apply(update.NewTranslation(
		update.NewInsert(pt(t, p, a, "u")), update.NewInsert(pt(t, p, b, "u")),
	)); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint commit, recovered from the fresh logs.
	if err := st.Apply(update.NewTranslation(update.NewInsert(pt(t, p, a+b+1, "v")))); err != nil {
		t.Fatal(err)
	}
	want := render(st.DB())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := render(rec.DB()); got != want {
		t.Fatalf("recovered %s, want %s", got, want)
	}
	rep := rec.Report()
	if rep.Replayed != 1 || rep.Skipped != 0 {
		t.Fatalf("report after checkpoint: %s, want 1 replayed (the post-checkpoint commit)", rep)
	}
	if rec.Seq() != 2 {
		t.Fatalf("recovered seq %d, want 2 (checkpoint watermark covers seq 1)", rec.Seq())
	}
	checkPartition(t, rec)
}

// appendRecords writes raw records to shard i's WAL of a closed store —
// the test's scalpel for constructing exact crash states.
func appendRecords(t *testing.T, dir string, i int, recs ...wal.Record) {
	t.Helper()
	log, _, err := wal.OpenFile(filepath.Join(shardDir(dir, i), persist.WALFile), wal.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := log.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWatermarkSkip pins the crash-during-checkpoint window where a
// shard's snapshot is fresh but its WAL was not yet truncated: records
// at or below the snapshot watermark must be skipped, not re-applied.
func TestWatermarkSkip(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t, dir, 4, Options{Sync: wal.SyncOnCommit})
	p := st.DB().Schema().Relation("P")
	if err := st.Apply(update.NewTranslation(update.NewInsert(pt(t, p, 1, "u")))); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := render(st.DB())
	home := st.Map().Of(pt(t, p, 1, "u"))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-append the already-snapshotted commit (seq 1 <= watermark 1).
	// Without the skip, replay would hit a duplicate-key violation.
	tr := update.NewTranslation(update.NewInsert(pt(t, p, 1, "u")))
	appendRecords(t, dir, home, wal.EncodeTranslation(1, tr), wal.CommitRecord(1))
	rec, err := Open(dir, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	rep := rec.Report()
	if rep.Skipped != 1 || rep.Replayed != 0 {
		t.Fatalf("report: %s, want 1 skipped 0 replayed", rep)
	}
	if got := render(rec.DB()); got != want {
		t.Fatalf("recovered %s, want %s", got, want)
	}
}

// TestRecoveryMatrix drives the 2PC recovery decision table record by
// record: a prepare with a resolve marker commits, a prepare with a
// decision on another shard's log commits, and an in-doubt prepare
// (neither) rolls back under presumed abort.
func TestRecoveryMatrix(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t, dir, 4, Options{Sync: wal.SyncOnCommit})
	p := st.DB().Schema().Relation("P")
	a, b := keysOnShards(t, st)
	sa, sb := st.Map().Of(pt(t, p, a, "u")), st.Map().Of(pt(t, p, b, "u"))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	mk := func(k int64) *update.Translation {
		return update.NewTranslation(update.NewInsert(pt(t, p, k, "u")))
	}
	// xid 1: cross-shard commit fully decided — resolve on sa, decision
	// on coordinator sa reaches sb's prepare through the decision table.
	appendRecords(t, dir, sa,
		wal.PrepareRecord(1, "", sa, mk(a)),
		wal.DecisionRecord(1),
		wal.ResolveRecord(1))
	appendRecords(t, dir, sb,
		wal.PrepareRecord(1, "", sa, mk(b)))
	// xid 2: in-doubt — prepare durable on sb, crash before decision.
	appendRecords(t, dir, sb,
		wal.PrepareRecord(2, "", sb, mk(b+sbDistinct(t, st, b))))

	rec, err := Open(dir, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	rep := rec.Report()
	if rep.PreparesCommitted != 2 || rep.PreparesAborted != 1 {
		t.Fatalf("report: %s, want 2 prepares committed, 1 aborted", rep)
	}
	// The reopened store rebuilt its relations from the snapshots, so
	// probe tuples must be built against the recovered schema.
	rp := rec.DB().Schema().Relation("P")
	if !rec.DB().Contains(pt(t, rp, a, "u")) || !rec.DB().Contains(pt(t, rp, b, "u")) {
		t.Fatal("decided cross-shard commit lost")
	}
	if len(rec.DB().Tuples("P")) != 2 {
		t.Fatalf("in-doubt prepare leaked: P holds %v", rec.DB().Tuples("P"))
	}
	if rec.Seq() != 2 {
		t.Fatalf("recovered seq %d, want 2 (aborted xids stay burned)", rec.Seq())
	}
	checkPartition(t, rec)
}

// sbDistinct returns an offset o such that key b+o still lands on b's
// shard (so the in-doubt prepare in the matrix test stays on sb) and
// differs from every key already used.
func sbDistinct(t *testing.T, st *Store, b int64) int64 {
	t.Helper()
	p := st.DB().Schema().Relation("P")
	home := st.Map().Of(pt(t, p, b, "u"))
	for o := int64(1); b+o < 999; o++ {
		if st.Map().Of(pt(t, p, b+o, "u")) == home {
			return o
		}
	}
	t.Fatal("no colocated key found")
	return 0
}

// TestOrphanPrune pins the fence's failure mode repair: a durable child
// whose parent insert was applied on another shard but never became
// durable must be pruned at recovery, leaving a consistent state.
func TestOrphanPrune(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t, dir, 4, Options{Sync: wal.SyncOnCommit})
	sch := st.DB().Schema()
	c := sch.Relation("C")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A committed child insert referencing parent key 77 — which exists
	// nowhere (its shard lost the unsynced parent in the crash).
	child := ct(t, c, 5, 77)
	home := st.Map().Of(child)
	appendRecords(t, dir, home,
		wal.EncodeTranslation(1, update.NewTranslation(update.NewInsert(child))),
		wal.CommitRecord(1))
	rec, err := Open(dir, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Report().OrphansPruned != 1 {
		t.Fatalf("report: %s, want 1 orphan pruned", rec.Report())
	}
	if len(rec.DB().Tuples("C")) != 0 {
		t.Fatal("orphaned child survived recovery")
	}
	if err := rec.DB().CheckAllInclusions(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashInsidePrepareWindow is the store-level acked-implies-durable
// property: a failure injected between the prepare barrier and the
// decision append must leave memory rolled back (the client was never
// acked) and recovery must presume abort for the durable prepares.
func TestCrashInsidePrepareWindow(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t, dir, 4, Options{Sync: wal.SyncOnCommit})
	p := st.DB().Schema().Relation("P")
	a, b := keysOnShards(t, st)
	baseline := render(st.DB())

	boom := errors.New("power cut")
	faultinject.Enable(faultinject.NewPlan(1).FailNth(faultinject.SiteShardPrepare, 1, boom))
	defer faultinject.Disable()
	err := st.Apply(update.NewTranslation(
		update.NewInsert(pt(t, p, a, "u")), update.NewInsert(pt(t, p, b, "u")),
	))
	if !errors.Is(err, persist.ErrNotDurable) || !errors.Is(err, boom) {
		t.Fatalf("apply across the crash window: %v, want ErrNotDurable wrapping the injected fault", err)
	}
	if got := render(st.DB()); got != baseline {
		t.Fatalf("memory not rolled back: %s, want %s", got, baseline)
	}
	checkPartition(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(dir, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Report().PreparesAborted != 2 {
		t.Fatalf("report: %s, want both durable prepares presumed aborted", rec.Report())
	}
	if got := render(rec.DB()); got != baseline {
		t.Fatalf("recovered %s, want baseline %s", got, baseline)
	}
}

// TestBrokenShardDegrades pins the journaling-failure contract: the
// failing commit rolls back and reports not-durable, the shard is
// marked broken, later commits touching it fail fast, commits on
// healthy shards keep working, checkpoint refuses, and a restart
// recovers the durable prefix.
func TestBrokenShardDegrades(t *testing.T) {
	dir := t.TempDir()
	sch, _, _ := fkSchema(t)
	probe, err := Create(dir, 4, storage.Open(sch), Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := probe.DB().Schema().Relation("P")
	a, b := keysOnShards(t, probe)
	victim := probe.Map().Of(pt(t, p, a, "u"))
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := Open(dir, 4, Options{Sync: wal.SyncOnCommit, WrapWAL: func(i int, f wal.File) wal.File {
		if i == victim {
			return &faultinject.CrashWriter{W: f, Limit: 0}
		}
		return f
	}})
	if err != nil {
		t.Fatal(err)
	}
	// The reopened store rebuilt its relations from the snapshots.
	p = st.DB().Schema().Relation("P")
	// Healthy shard commits fine.
	if err := st.Apply(update.NewTranslation(update.NewInsert(pt(t, p, b, "u")))); err != nil {
		t.Fatal(err)
	}
	want := render(st.DB())
	// Victim shard: first write crashes; memory must roll back.
	err = st.Apply(update.NewTranslation(update.NewInsert(pt(t, p, a, "u"))))
	if !errors.Is(err, persist.ErrNotDurable) {
		t.Fatalf("apply on crashed shard: %v, want ErrNotDurable", err)
	}
	if render(st.DB()) != want {
		t.Fatal("failed apply left memory state behind")
	}
	if st.Broken(victim) == nil || st.BrokenAny() == nil {
		t.Fatal("victim shard not marked broken")
	}
	// Fail-fast on the broken shard, healthy shards still commit.
	if err := st.Apply(update.NewTranslation(update.NewInsert(pt(t, p, a, "v")))); err == nil {
		t.Fatal("apply on broken shard should fail fast")
	}
	if err := st.Apply(update.NewTranslation(update.NewInsert(pt(t, p, b+sbDistinct(t, st, b), "u")))); err != nil {
		t.Fatalf("healthy shard after breakage: %v", err)
	}
	if err := st.Checkpoint(); err == nil {
		t.Fatal("checkpoint on a broken fleet should refuse")
	}
	want = render(st.DB())
	st.Close()

	rec, err := Open(dir, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := render(rec.DB()); got != want {
		t.Fatalf("recovered %s, want the committed prefix %s", got, want)
	}
}

// TestKeysByShard checks idempotency-key recovery is per shard and in
// log order, across both plain commits and resolved prepares.
func TestKeysByShard(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t, dir, 2, Options{})
	p := st.DB().Schema().Relation("P")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	var k0, k1 int64 = -1, -1
	for k := int64(0); k < 500 && (k0 < 0 || k1 < 0); k++ {
		if st.Map().Of(pt(t, p, k, "u")) == 0 && k0 < 0 {
			k0 = k
		} else if st.Map().Of(pt(t, p, k, "u")) == 1 && k1 < 0 {
			k1 = k
		}
	}
	appendRecords(t, dir, 0,
		wal.EncodeTranslationKeyed(1, "alpha", update.NewTranslation(update.NewInsert(pt(t, p, k0, "u")))),
		wal.CommitRecord(1))
	appendRecords(t, dir, 1,
		wal.PrepareRecord(2, "beta", 1, update.NewTranslation(update.NewInsert(pt(t, p, k1, "u")))),
		wal.ResolveRecord(2))
	rec, err := Open(dir, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	keys := rec.KeysByShard()
	if len(keys[0]) != 1 || keys[0][0] != "alpha" {
		t.Fatalf("shard 0 keys = %v, want [alpha]", keys[0])
	}
	if len(keys[1]) != 1 || keys[1][0] != "beta" {
		t.Fatalf("shard 1 keys = %v, want [beta]", keys[1])
	}
}
