package shard

import (
	"testing"

	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
)

// fkSchema builds P(PK,PV) / C(CK,FK) with C[FK] ⊆ P[key] over a key
// domain wide enough to spread across an 8-shard map.
func fkSchema(t testing.TB) (*schema.Database, *schema.Relation, *schema.Relation) {
	t.Helper()
	kd, err := schema.IntRangeDomain("KD", 0, 999)
	if err != nil {
		t.Fatal(err)
	}
	vd := schema.MustDomain("VD", value.NewString("u"), value.NewString("v"), value.NewString("w"))
	p := schema.MustRelation("P", []schema.Attribute{
		{Name: "PK", Domain: kd},
		{Name: "PV", Domain: vd},
	}, []string{"PK"})
	c := schema.MustRelation("C", []schema.Attribute{
		{Name: "CK", Domain: kd},
		{Name: "FK", Domain: kd},
	}, []string{"CK"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(p); err != nil {
		t.Fatal(err)
	}
	if err := sch.AddRelation(c); err != nil {
		t.Fatal(err)
	}
	if err := sch.AddInclusion(schema.InclusionDependency{Child: "C", ChildAttrs: []string{"FK"}, Parent: "P"}); err != nil {
		t.Fatal(err)
	}
	return sch, p, c
}

func pt(t testing.TB, p *schema.Relation, k int64, v string) tuple.T {
	t.Helper()
	return tuple.MustNew(p, value.NewInt(k), value.NewString(v))
}

func ct(t testing.TB, c *schema.Relation, k, fk int64) tuple.T {
	t.Helper()
	return tuple.MustNew(c, value.NewInt(k), value.NewInt(fk))
}

func mustMap(t testing.TB, n int) *Map {
	t.Helper()
	m, err := NewMap(n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMapBounds(t *testing.T) {
	for _, n := range []int{0, -1, MaxShards + 1} {
		if _, err := NewMap(n); err == nil {
			t.Errorf("NewMap(%d) should fail", n)
		}
	}
	for _, n := range []int{1, 2, MaxShards} {
		if _, err := NewMap(n); err != nil {
			t.Errorf("NewMap(%d): %v", n, err)
		}
	}
}

// TestMapDeterministicKeyOnly pins the two load-bearing map properties:
// the shard of a tuple depends only on its relation and key values (not
// the non-key attributes), and a 1-shard map sends everything to 0.
func TestMapDeterministicKeyOnly(t *testing.T) {
	_, p, _ := fkSchema(t)
	m := mustMap(t, 8)
	one := mustMap(t, 1)
	for k := int64(0); k < 200; k++ {
		a, b := pt(t, p, k, "u"), pt(t, p, k, "v")
		if m.Of(a) != m.Of(b) {
			t.Fatalf("key %d: shard depends on non-key attribute", k)
		}
		if s := m.Of(a); s < 0 || s >= 8 {
			t.Fatalf("key %d: shard %d out of range", k, s)
		}
		if one.Of(a) != 0 {
			t.Fatalf("key %d: single-shard map returned %d", k, one.Of(a))
		}
	}
}

// TestOfParentKeyAgreesWithOf checks the router's parent-locating
// shortcut: hashing a child's projected foreign-key encoding must land
// on the same shard as hashing the actual parent tuple. This is what
// makes fence computation sound without materializing parents.
func TestOfParentKeyAgreesWithOf(t *testing.T) {
	sch, p, c := fkSchema(t)
	m := mustMap(t, 8)
	dep := sch.InclusionsFrom("C")[0]
	for k := int64(0); k < 200; k++ {
		child := ct(t, c, (k+7)%1000, k) // child referencing parent key k
		enc, err := child.ProjectEncode(dep.ChildAttrs)
		if err != nil {
			t.Fatal(err)
		}
		parent := pt(t, p, k, "w")
		if m.OfParentKey(dep.Parent, enc) != m.Of(parent) {
			t.Fatalf("key %d: OfParentKey disagrees with Of(parent tuple)", k)
		}
	}
}

// TestMapDistribution checks the hash spreads keys across the fleet:
// with 1000 sequential integer keys over 8 shards, every shard should
// own a reasonable slice (at least a quarter of the fair share).
func TestMapDistribution(t *testing.T) {
	_, p, _ := fkSchema(t)
	m := mustMap(t, 8)
	counts := make([]int, 8)
	for k := int64(0); k < 1000; k++ {
		counts[m.Of(pt(t, p, k%1000, "u"))]++
	}
	for i, n := range counts {
		if n < 1000/8/4 {
			t.Errorf("shard %d owns only %d of 1000 keys (counts %v)", i, n, counts)
		}
	}
}
