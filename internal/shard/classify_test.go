package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
)

func TestClassifySingleVsCross(t *testing.T) {
	sch, p, _ := fkSchema(t)
	m := mustMap(t, 4)
	// Two parent keys on the same shard -> single-shard.
	var same []int64
	for k := int64(1); k < 200 && len(same) < 2; k++ {
		if m.Of(pt(t, p, k, "u")) == m.Of(pt(t, p, 0, "u")) {
			same = append(same, k)
		}
	}
	tr := update.NewTranslation(
		update.NewInsert(pt(t, p, 0, "u")),
		update.NewInsert(pt(t, p, same[0], "u")),
		update.NewInsert(pt(t, p, same[1], "u")),
	)
	r, err := Classify(m, sch, tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cross() || len(r.Participants) != 1 || r.Parts[r.Home()].Len() != 3 {
		t.Fatalf("colocated inserts classified as %+v", r)
	}
	// Add a key from another shard -> cross-shard.
	var other int64 = -1
	for k := int64(1); k < 200; k++ {
		if m.Of(pt(t, p, k, "u")) != m.Of(pt(t, p, 0, "u")) {
			other = k
			break
		}
	}
	tr.Add(update.NewInsert(pt(t, p, other, "u")))
	r, err = Classify(m, sch, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cross() || len(r.Participants) != 2 {
		t.Fatalf("mixed-shard inserts classified as %+v", r)
	}
}

// TestClassifyReplaceSplit pins the replacement rule: a key-preserving
// replace stays one op on its shard; a key-moving replace becomes a
// delete on the old owner and an insert on the new owner.
func TestClassifyReplaceSplit(t *testing.T) {
	sch, p, _ := fkSchema(t)
	m := mustMap(t, 4)
	intact := update.NewTranslation(update.NewReplace(pt(t, p, 5, "u"), pt(t, p, 5, "v")))
	r, err := Classify(m, sch, intact)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cross() || r.Parts[r.Home()].Ops()[0].Kind != update.Replace {
		t.Fatalf("key-preserving replace classified as %+v", r)
	}
	var moved int64 = -1
	for k := int64(1); k < 500; k++ {
		if m.Of(pt(t, p, k, "u")) != m.Of(pt(t, p, 5, "u")) {
			moved = k
			break
		}
	}
	split := update.NewTranslation(update.NewReplace(pt(t, p, 5, "u"), pt(t, p, moved, "v")))
	r, err = Classify(m, sch, split)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cross() || len(r.Participants) != 2 {
		t.Fatalf("key-moving replace classified as %+v", r)
	}
	oldPart := r.Parts[m.Of(pt(t, p, 5, "u"))]
	newPart := r.Parts[m.Of(pt(t, p, moved, "u"))]
	if oldPart.Len() != 1 || oldPart.Ops()[0].Kind != update.Delete {
		t.Fatalf("old owner got %s", oldPart)
	}
	if newPart.Len() != 1 || newPart.Ops()[0].Kind != update.Insert {
		t.Fatalf("new owner got %s", newPart)
	}
}

// TestClassifyFence pins the two fence rules directly: a child insert
// fences the shard owning its referenced parent key, and any delete
// touching a parent relation fences every non-participant shard.
func TestClassifyFence(t *testing.T) {
	sch, p, c := fkSchema(t)
	m := mustMap(t, 4)
	// A child whose parent lives on a different shard.
	var ck, fk int64 = -1, -1
	for a := int64(0); a < 200 && ck < 0; a++ {
		for b := int64(0); b < 200; b++ {
			if m.Of(ct(t, c, a, b)) != m.Of(pt(t, p, b, "u")) {
				ck, fk = a, b
				break
			}
		}
	}
	r, err := Classify(m, sch, update.NewTranslation(update.NewInsert(ct(t, c, ck, fk))))
	if err != nil {
		t.Fatal(err)
	}
	want := m.Of(pt(t, p, fk, "u"))
	if len(r.Fence) != 1 || r.Fence[0] != want {
		t.Fatalf("child insert fence = %v, want [%d]", r.Fence, want)
	}
	// A parent delete fences all other shards.
	r, err = Classify(m, sch, update.NewTranslation(update.NewDelete(pt(t, p, 3, "u"))))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fence) != 3 {
		t.Fatalf("parent delete fence = %v, want the 3 other shards", r.Fence)
	}
	// A child delete fences nothing (nothing references C).
	r, err = Classify(m, sch, update.NewTranslation(update.NewDelete(ct(t, c, 1, 1))))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fence) != 0 {
		t.Fatalf("child delete fence = %v, want none", r.Fence)
	}
}

// randSPJ generates a random SPJ base schema: nRel relations over a
// shared key domain, relation i carrying zero or more foreign keys into
// relations j < i (so the inclusion graph is acyclic, as the paper's
// rooted join trees require).
func randSPJ(t *testing.T, rng *rand.Rand, nRel int) (*schema.Database, []*schema.Relation) {
	t.Helper()
	kd, err := schema.IntRangeDomain("KD", 0, 999)
	if err != nil {
		t.Fatal(err)
	}
	sch := schema.NewDatabase()
	rels := make([]*schema.Relation, nRel)
	for i := 0; i < nRel; i++ {
		attrs := []schema.Attribute{{Name: "K", Domain: kd}}
		var deps []schema.InclusionDependency
		for j := 0; j < i; j++ {
			if rng.Intn(3) == 0 { // ~1/3 of possible edges
				fkName := fmt.Sprintf("F%d", j)
				attrs = append(attrs, schema.Attribute{Name: fkName, Domain: kd})
				deps = append(deps, schema.InclusionDependency{
					Child: fmt.Sprintf("R%d", i), ChildAttrs: []string{fkName}, Parent: fmt.Sprintf("R%d", j),
				})
			}
		}
		rels[i] = schema.MustRelation(fmt.Sprintf("R%d", i), attrs, []string{"K"})
		if err := sch.AddRelation(rels[i]); err != nil {
			t.Fatal(err)
		}
		for _, d := range deps {
			if err := sch.AddInclusion(d); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sch, rels
}

// randTuple builds a schema-valid tuple of rel with the given key and
// random foreign-key values.
func randTuple(t *testing.T, rng *rand.Rand, rel *schema.Relation, key int64) tuple.T {
	t.Helper()
	vals := make([]value.Value, len(rel.Attributes()))
	vals[0] = value.NewInt(key)
	for i := 1; i < len(vals); i++ {
		vals[i] = value.NewInt(int64(rng.Intn(1000)))
	}
	return tuple.MustNew(rel, vals...)
}

// TestClassifyPropertyRandomSPJ is the router soundness property test:
// across randomized SPJ schemas, shard counts and translations, the
// classification must agree with the inclusion-dependency graph —
// every op lands on the shard owning its tuple, the parts reassemble
// the translation exactly, and for every inclusion edge leaving an
// added tuple, the shard owning the referenced parent (computed
// independently, by hashing a materialized parent tuple) is covered by
// participants ∪ fence. Deletes against parent relations must fence
// every non-participant shard.
func TestClassifyPropertyRandomSPJ(t *testing.T) {
	rng := rand.New(rand.NewSource(85)) // deterministic: PODS '85
	for trial := 0; trial < 150; trial++ {
		nRel := 2 + rng.Intn(4)
		sch, rels := randSPJ(t, rng, nRel)
		m := mustMap(t, 1+rng.Intn(8))
		tr := update.NewTranslation()
		nextKey := int64(0)
		key := func() int64 { nextKey++; return nextKey - 1 }
		for i, nOps := 0, 1+rng.Intn(6); i < nOps; i++ {
			rel := rels[rng.Intn(nRel)]
			switch rng.Intn(3) {
			case 0:
				tr.Add(update.NewInsert(randTuple(t, rng, rel, key())))
			case 1:
				tr.Add(update.NewDelete(randTuple(t, rng, rel, key())))
			case 2:
				old := randTuple(t, rng, rel, key())
				nk := old.MustGet("K")
				if rng.Intn(2) == 0 {
					nk = value.NewInt(key()) // key-moving replace
				}
				vals := []value.Value{nk}
				for j := 1; j < len(rel.Attributes()); j++ {
					vals = append(vals, value.NewInt(int64(rng.Intn(1000))))
				}
				tr.Add(update.NewReplace(old, tuple.MustNew(rel, vals...)))
			}
		}
		r, err := Classify(m, sch, tr)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkRouteInvariants(t, trial, m, sch, tr, r)
	}
}

func checkRouteInvariants(t *testing.T, trial int, m *Map, sch *schema.Database, tr *update.Translation, r *Route) {
	t.Helper()
	isPart := map[int]bool{}
	for _, p := range r.Participants {
		isPart[p] = true
	}
	if !sort.IntsAreSorted(r.Participants) || !sort.IntsAreSorted(r.Fence) {
		t.Fatalf("trial %d: unsorted route %+v", trial, r)
	}
	for _, f := range r.Fence {
		if isPart[f] || f < 0 || f >= m.N() {
			t.Fatalf("trial %d: fence %v overlaps participants %v or out of range", trial, r.Fence, r.Participants)
		}
	}
	// Placement + reassembly: collect every op from the parts and check
	// it sits on its tuple's shard; the multiset of effects must equal
	// the original translation's (replaces may appear split).
	got := update.NewTranslation()
	for shardIdx, part := range r.Parts {
		if !isPart[shardIdx] || part.Len() == 0 {
			t.Fatalf("trial %d: part on non-participant or empty part %d", trial, shardIdx)
		}
		for _, o := range part.Ops() {
			switch o.Kind {
			case update.Insert, update.Delete:
				if m.Of(o.Tuple) != shardIdx {
					t.Fatalf("trial %d: op %v on shard %d, owner %d", trial, o, shardIdx, m.Of(o.Tuple))
				}
			case update.Replace:
				if m.Of(o.Old) != shardIdx || m.Of(o.New) != shardIdx {
					t.Fatalf("trial %d: unsplit replace %v on shard %d spans shards", trial, o, shardIdx)
				}
			}
			got.Add(o)
		}
	}
	if !got.Added().Equal(tr.Added()) || !got.Removed().Equal(tr.Removed()) {
		t.Fatalf("trial %d: parts reassemble to %s, want %s", trial, got, tr)
	}
	// Fence soundness against the inclusion graph: every parent shard
	// reachable over an inclusion edge from an added tuple is covered.
	for _, added := range tr.Added().Slice() {
		for _, d := range sch.InclusionsFrom(added.Relation().Name()) {
			fkVal, ok := added.Get(d.ChildAttrs[0])
			if !ok {
				t.Fatalf("trial %d: %v lacks %s", trial, added, d.ChildAttrs[0])
			}
			parentRel := sch.Relation(d.Parent)
			vals := []value.Value{fkVal}
			for j := 1; j < len(parentRel.Attributes()); j++ {
				vals = append(vals, value.NewInt(0))
			}
			pShard := m.Of(tuple.MustNew(parentRel, vals...))
			if !isPart[pShard] && !contains(r.Fence, pShard) {
				t.Fatalf("trial %d: parent shard %d of %v not covered (participants %v fence %v)",
					trial, pShard, added, r.Participants, r.Fence)
			}
		}
	}
	// Parent-delete rule: removing from a referenced relation fences
	// every shard outside the participant set.
	for _, removed := range tr.Removed().Slice() {
		if len(sch.InclusionsInto(removed.Relation().Name())) == 0 {
			continue
		}
		for i := 0; i < m.N(); i++ {
			if !isPart[i] && !contains(r.Fence, i) {
				t.Fatalf("trial %d: parent delete %v leaves shard %d unfenced", trial, removed, i)
			}
		}
		break
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
