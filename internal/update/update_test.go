package update

import (
	"strings"
	"testing"

	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
)

func testRel(t testing.TB) *schema.Relation {
	t.Helper()
	k := schema.MustDomain("KD", value.NewInt(1), value.NewInt(2), value.NewInt(3))
	a := schema.MustDomain("AD", value.NewString("x"), value.NewString("y"))
	return schema.MustRelation("R", []schema.Attribute{
		{Name: "K", Domain: k},
		{Name: "A", Domain: a},
	}, []string{"K"})
}

func mk(t testing.TB, rel *schema.Relation, k int64, a string) tuple.T {
	t.Helper()
	return tuple.MustNew(rel, value.NewInt(k), value.NewString(a))
}

func TestOpBasics(t *testing.T) {
	rel := testRel(t)
	t1 := mk(t, rel, 1, "x")
	t2 := mk(t, rel, 1, "y")

	ins := NewInsert(t1)
	del := NewDelete(t1)
	rep := NewReplace(t1, t2)
	if ins.Kind != Insert || del.Kind != Delete || rep.Kind != Replace {
		t.Fatal("kinds wrong")
	}
	if ins.RelationName() != "R" || rep.RelationName() != "R" {
		t.Fatal("RelationName wrong")
	}
	if ins.Encode() == del.Encode() {
		t.Fatal("insert and delete of same tuple must encode differently")
	}
	if !strings.Contains(ins.String(), "INSERT") ||
		!strings.Contains(del.String(), "DELETE") ||
		!strings.Contains(rep.String(), "REPLACE") {
		t.Fatal("String wrong")
	}
	for _, k := range []Kind{Insert, Delete, Replace} {
		if k.String() == "invalid" {
			t.Fatal("kind name wrong")
		}
	}
	if Kind(0).String() != "invalid" {
		t.Fatal("zero kind should be invalid")
	}
}

func TestTranslationSets(t *testing.T) {
	rel := testRel(t)
	t1 := mk(t, rel, 1, "x")
	t2 := mk(t, rel, 2, "x")
	t3 := mk(t, rel, 3, "x")
	t3y := mk(t, rel, 3, "y")

	tr := NewTranslation(NewInsert(t1), NewDelete(t2), NewReplace(t3, t3y))
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.Inserts(); len(got) != 1 || !got[0].Equal(t1) {
		t.Fatalf("Inserts = %v", got)
	}
	if got := tr.Deletes(); len(got) != 1 || !got[0].Equal(t2) {
		t.Fatalf("Deletes = %v", got)
	}
	if got := tr.Replacements(); len(got) != 1 || !got[0].Old.Equal(t3) {
		t.Fatalf("Replacements = %v", got)
	}
	added := tr.Added()
	if added.Len() != 2 || !added.Contains(t1) || !added.Contains(t3y) {
		t.Fatalf("Added = %v", added.Slice())
	}
	removed := tr.Removed()
	if removed.Len() != 2 || !removed.Contains(t2) || !removed.Contains(t3) {
		t.Fatalf("Removed = %v", removed.Slice())
	}
	if got := tr.RelationsTouched(); len(got) != 1 || got[0] != "R" {
		t.Fatalf("RelationsTouched = %v", got)
	}
	if !strings.HasPrefix(tr.String(), "{") {
		t.Fatalf("String = %q", tr.String())
	}
}

func TestTranslationIdempotentAdd(t *testing.T) {
	rel := testRel(t)
	t1 := mk(t, rel, 1, "x")
	tr := NewTranslation(NewInsert(t1), NewInsert(t1))
	if tr.Len() != 1 {
		t.Fatalf("duplicate op should collapse, Len = %d", tr.Len())
	}
}

// TestEquivalence reproduces §3: "the equivalence can result from
// converting a pair of an insertion and a deletion into a replacement,
// or from swapping the replacement tuples from a pair of replace
// operations."
func TestEquivalence(t *testing.T) {
	rel := testRel(t)
	a := mk(t, rel, 1, "x")
	b := mk(t, rel, 2, "x")
	// delete a + insert b  ≡  replace a->b.
	tr1 := NewTranslation(NewDelete(a), NewInsert(b))
	tr2 := NewTranslation(NewReplace(a, b))
	if !tr1.Equivalent(tr2) {
		t.Fatal("delete+insert should be equivalent to replace")
	}
	if tr1.Equal(tr2) {
		t.Fatal("Equal must be finer than Equivalent")
	}
	// Swapping replacement targets of a pair of replaces.
	c := mk(t, rel, 3, "x")
	d := mk(t, rel, 3, "y")
	tr3 := NewTranslation(NewReplace(a, c), NewReplace(b, d))
	tr4 := NewTranslation(NewReplace(a, d), NewReplace(b, c))
	if !tr3.Equivalent(tr4) {
		t.Fatal("swapped replacements should be equivalent")
	}
	// Non-equivalent pair.
	tr5 := NewTranslation(NewDelete(a))
	if tr1.Equivalent(tr5) {
		t.Fatal("different removed sets should not be equivalent")
	}
}

func TestSimplicityOrder(t *testing.T) {
	rel := testRel(t)
	a := mk(t, rel, 1, "x")
	b := mk(t, rel, 2, "x")
	small := NewTranslation(NewDelete(a))
	big := NewTranslation(NewDelete(a), NewDelete(b))
	if !small.AtLeastAsSimpleAs(big) {
		t.Fatal("subset should be at least as simple")
	}
	if big.AtLeastAsSimpleAs(small) {
		t.Fatal("superset should not be at least as simple")
	}
	if !small.StrictlySimplerThan(big) || small.StrictlySimplerThan(small) {
		t.Fatal("strict order wrong")
	}
	// Incomparable translations.
	other := NewTranslation(NewDelete(b))
	if small.AtLeastAsSimpleAs(other) || other.AtLeastAsSimpleAs(small) {
		t.Fatal("disjoint translations should be incomparable")
	}
}

func TestProperSubsets(t *testing.T) {
	rel := testRel(t)
	a := mk(t, rel, 1, "x")
	b := mk(t, rel, 2, "x")
	tr := NewTranslation(NewDelete(a), NewDelete(b))
	subs := tr.ProperSubsets()
	if len(subs) != 3 { // {}, {a}, {b}
		t.Fatalf("want 3 proper subsets, got %d", len(subs))
	}
	if got := NewTranslation().ProperSubsets(); got != nil {
		t.Fatalf("empty translation has no proper subsets, got %v", got)
	}
	sizes := map[int]int{}
	for _, s := range subs {
		sizes[s.Len()]++
	}
	if sizes[0] != 1 || sizes[1] != 2 {
		t.Fatalf("subset sizes wrong: %v", sizes)
	}
}

func TestEncodeCanonical(t *testing.T) {
	rel := testRel(t)
	a := mk(t, rel, 1, "x")
	b := mk(t, rel, 2, "x")
	tr1 := NewTranslation(NewDelete(a), NewInsert(b))
	tr2 := NewTranslation(NewInsert(b), NewDelete(a))
	if tr1.Encode() != tr2.Encode() || !tr1.Equal(tr2) {
		t.Fatal("op order must not affect encoding")
	}
}

func TestCloneAndAddAll(t *testing.T) {
	rel := testRel(t)
	a := mk(t, rel, 1, "x")
	b := mk(t, rel, 2, "x")
	tr := NewTranslation(NewDelete(a))
	cl := tr.Clone()
	cl.Add(NewInsert(b))
	if tr.Len() != 1 || cl.Len() != 2 {
		t.Fatal("clone not independent")
	}
	merged := NewTranslation()
	merged.AddAll(tr)
	merged.AddAll(cl)
	if merged.Len() != 2 {
		t.Fatalf("AddAll wrong: %d", merged.Len())
	}
	var nilTr *Translation
	if nilTr.Len() != 0 || nilTr.Ops() != nil {
		t.Fatal("nil translation reads should be safe")
	}
}
