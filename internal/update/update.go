// Package update defines database update operations (single-tuple
// insertion, deletion, replacement) and translations: the sets of
// operations a view update is mapped to. It implements the paper's
// notions of translation equivalence (equal added and removed sets) and
// the simplicity partial order (subset-wise on added/removed sets).
package update

import (
	"fmt"
	"sort"
	"strings"

	"viewupdate/internal/tuple"
)

// Kind distinguishes the three database operations of the paper: "The
// operations on databases and views are deletion, insertion, and
// replacement."
type Kind uint8

// The operation kinds.
const (
	Insert Kind = iota + 1
	Delete
	Replace
)

// String returns the operation kind's name.
func (k Kind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case Replace:
		return "replace"
	default:
		return "invalid"
	}
}

// An Op is one database update operation. For Insert and Delete, Tuple
// is the affected tuple and Old/New are zero. For Replace, Old and New
// are the replaced and replacement tuples (same relation) and Tuple is
// zero. A replacement is a single atomic action: it "does not require
// an intermediate consistent state between the deletion and insertion
// steps".
type Op struct {
	Kind  Kind
	Tuple tuple.T // Insert/Delete payload
	Old   tuple.T // Replace: tuple removed
	New   tuple.T // Replace: tuple added
}

// NewInsert returns an insertion of t.
func NewInsert(t tuple.T) Op { return Op{Kind: Insert, Tuple: t} }

// NewDelete returns a deletion of t.
func NewDelete(t tuple.T) Op { return Op{Kind: Delete, Tuple: t} }

// NewReplace returns a replacement of old by new.
func NewReplace(old, new tuple.T) Op { return Op{Kind: Replace, Old: old, New: new} }

// RelationName returns the name of the relation the op touches.
func (o Op) RelationName() string {
	switch o.Kind {
	case Insert, Delete:
		return o.Tuple.Relation().Name()
	case Replace:
		return o.Old.Relation().Name()
	}
	return ""
}

// Encode returns a canonical injective encoding of the op.
func (o Op) Encode() string {
	switch o.Kind {
	case Insert:
		return "I\x00" + o.Tuple.Encode()
	case Delete:
		return "D\x00" + o.Tuple.Encode()
	case Replace:
		return "R\x00" + o.Old.Encode() + "\x00" + o.New.Encode()
	}
	return "?"
}

// String renders the op for humans.
func (o Op) String() string {
	switch o.Kind {
	case Insert:
		return fmt.Sprintf("INSERT %s", o.Tuple)
	case Delete:
		return fmt.Sprintf("DELETE %s", o.Tuple)
	case Replace:
		return fmt.Sprintf("REPLACE %s -> %s", o.Old, o.New)
	}
	return "<invalid op>"
}

// A Translation is a candidate sequence of database updates for one
// view update request, represented — as in the paper — by three sets:
// insertions, deletions and replacements. Criterion 2 guarantees no
// ordering is imposed among the operations, so sets lose nothing.
//
// The zero Translation is empty and ready to use.
type Translation struct {
	ops map[string]Op // Encode() -> op
}

// NewTranslation builds a translation from the given ops.
func NewTranslation(ops ...Op) *Translation {
	tr := &Translation{ops: make(map[string]Op, len(ops))}
	for _, o := range ops {
		tr.Add(o)
	}
	return tr
}

// Add inserts an op (idempotent for identical ops).
func (tr *Translation) Add(o Op) {
	if tr.ops == nil {
		tr.ops = make(map[string]Op)
	}
	tr.ops[o.Encode()] = o
}

// AddAll inserts every op of other.
func (tr *Translation) AddAll(other *Translation) {
	for _, o := range other.Ops() {
		tr.Add(o)
	}
}

// Len returns the number of operations.
func (tr *Translation) Len() int {
	if tr == nil {
		return 0
	}
	return len(tr.ops)
}

// Ops returns the operations in deterministic (encoding) order.
func (tr *Translation) Ops() []Op {
	if tr == nil {
		return nil
	}
	keys := make([]string, 0, len(tr.ops))
	for k := range tr.ops {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Op, len(keys))
	for i, k := range keys {
		out[i] = tr.ops[k]
	}
	return out
}

// Inserts returns the inserted tuples.
func (tr *Translation) Inserts() []tuple.T { return tr.tuplesOf(Insert) }

// Deletes returns the deleted tuples.
func (tr *Translation) Deletes() []tuple.T { return tr.tuplesOf(Delete) }

func (tr *Translation) tuplesOf(k Kind) []tuple.T {
	var out []tuple.T
	for _, o := range tr.Ops() {
		if o.Kind == k {
			out = append(out, o.Tuple)
		}
	}
	return out
}

// Replacements returns the replacement ops.
func (tr *Translation) Replacements() []Op {
	var out []Op
	for _, o := range tr.Ops() {
		if o.Kind == Replace {
			out = append(out, o)
		}
	}
	return out
}

// Added returns the paper's added set: inserted tuples ∪ replacement
// (new) tuples.
func (tr *Translation) Added() *tuple.Set {
	s := tuple.NewSet()
	for _, o := range tr.Ops() {
		switch o.Kind {
		case Insert:
			s.Add(o.Tuple)
		case Replace:
			s.Add(o.New)
		}
	}
	return s
}

// Removed returns the paper's removed set: deleted tuples ∪ replaced
// (old) tuples.
func (tr *Translation) Removed() *tuple.Set {
	s := tuple.NewSet()
	for _, o := range tr.Ops() {
		switch o.Kind {
		case Delete:
			s.Add(o.Tuple)
		case Replace:
			s.Add(o.Old)
		}
	}
	return s
}

// Equivalent implements the paper's equivalence: "two translations are
// equivalent if their respective added and removed sets are equal".
func (tr *Translation) Equivalent(other *Translation) bool {
	return tr.Added().Equal(other.Added()) && tr.Removed().Equal(other.Removed())
}

// AtLeastAsSimpleAs implements the paper's order: "one translation is
// at least as simple as another if its added and removed sets are
// subsets of those of the other translation".
func (tr *Translation) AtLeastAsSimpleAs(other *Translation) bool {
	return subset(tr.Added(), other.Added()) && subset(tr.Removed(), other.Removed())
}

// StrictlySimplerThan reports tr ≤ other and not other ≤ tr.
func (tr *Translation) StrictlySimplerThan(other *Translation) bool {
	return tr.AtLeastAsSimpleAs(other) && !other.AtLeastAsSimpleAs(tr)
}

func subset(a, b *tuple.Set) bool {
	for _, t := range a.Slice() {
		if !b.Contains(t) {
			return false
		}
	}
	return true
}

// Encode returns a canonical encoding of the whole translation: the
// sorted encodings of its ops. Two translations have equal encodings
// iff they contain the same operations.
func (tr *Translation) Encode() string {
	keys := make([]string, 0, tr.Len())
	for k := range tr.ops {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x01")
}

// Equal reports whether two translations contain exactly the same ops
// (a finer relation than Equivalent).
func (tr *Translation) Equal(other *Translation) bool {
	return tr.Encode() == other.Encode()
}

// Clone returns a copy of tr.
func (tr *Translation) Clone() *Translation {
	out := NewTranslation()
	for k, o := range tr.ops {
		out.ops[k] = o
	}
	return out
}

// ProperSubsets enumerates every proper (possibly empty) subset of the
// translation's operations as new translations. Used by criterion 3
// ("no valid translation performs only a proper subset of the database
// requests"). The number of subsets is 2^n − 1; the paper's candidate
// translations have at most a handful of ops.
func (tr *Translation) ProperSubsets() []*Translation {
	ops := tr.Ops()
	n := len(ops)
	if n == 0 {
		return nil
	}
	var out []*Translation
	for mask := 0; mask < (1<<n)-1; mask++ {
		sub := NewTranslation()
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub.Add(ops[i])
			}
		}
		out = append(out, sub)
	}
	return out
}

// RelationsTouched returns the names of relations with at least one
// op, sorted.
func (tr *Translation) RelationsTouched() []string {
	seen := make(map[string]bool)
	for _, o := range tr.Ops() {
		seen[o.RelationName()] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String renders the translation as a brace-wrapped op list.
func (tr *Translation) String() string {
	ops := tr.Ops()
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return "{" + strings.Join(parts, "; ") + "}"
}
