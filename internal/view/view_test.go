package view

import (
	"strings"
	"testing"

	"viewupdate/internal/algebra"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
)

// empFixture builds a small EMP-like schema locally (the fixtures
// package depends on view, so view tests build their own).
func empFixture(t testing.TB) (*schema.Database, *schema.Relation) {
	t.Helper()
	no := schema.MustDomain("NoD", value.NewInt(1), value.NewInt(2), value.NewInt(3), value.NewInt(4))
	loc := schema.MustDomain("LocD", value.NewString("NY"), value.NewString("SF"))
	team := schema.BoolDomain("TeamD")
	rel := schema.MustRelation("EMP", []schema.Attribute{
		{Name: "No", Domain: no},
		{Name: "Loc", Domain: loc},
		{Name: "Team", Domain: team},
	}, []string{"No"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	return sch, rel
}

func emp(t testing.TB, rel *schema.Relation, no int64, loc string, team bool) tuple.T {
	t.Helper()
	return tuple.MustNew(rel, value.NewInt(no), value.NewString(loc), value.NewBool(team))
}

func TestSPViewConstruction(t *testing.T) {
	_, rel := empFixture(t)
	sel := algebra.NewSelection(rel).MustAddTerm("Loc", value.NewString("NY"))
	v, err := NewSP("V", sel, []string{"No", "Team"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Name() != "V" || v.Base() != rel {
		t.Fatal("accessors wrong")
	}
	if v.Schema().Arity() != 2 || v.Schema().Key()[0] != "No" {
		t.Fatal("derived schema wrong")
	}
	if got := v.ProjectedOut(); len(got) != 1 || got[0] != "Loc" {
		t.Fatalf("ProjectedOut = %v", got)
	}
	if v.IsIdentity() {
		t.Fatal("not identity")
	}
	id := Identity("Id", rel)
	if !id.IsIdentity() {
		t.Fatal("identity view wrong")
	}
	// Projection dropping the key fails.
	if _, err := NewSP("Bad", sel, []string{"Loc", "Team"}); err == nil {
		t.Fatal("dropping the key should fail")
	}
}

func TestSPViewRowForAndMaterialize(t *testing.T) {
	sch, rel := empFixture(t)
	sel := algebra.NewSelection(rel).MustAddTerm("Loc", value.NewString("NY"))
	v, err := NewSP("V", sel, []string{"No", "Team"})
	if err != nil {
		t.Fatal(err)
	}
	db := storage.Open(sch)
	if err := db.Load("EMP",
		emp(t, rel, 1, "NY", true),
		emp(t, rel, 2, "SF", true),
		emp(t, rel, 3, "NY", false),
	); err != nil {
		t.Fatal(err)
	}
	rows := v.Materialize(db)
	if rows.Len() != 2 {
		t.Fatalf("want 2 view rows, got %d", rows.Len())
	}
	if _, ok := v.RowFor(emp(t, rel, 2, "SF", true)); ok {
		t.Fatal("SF employee should not appear")
	}
	row, ok := v.RowFor(emp(t, rel, 1, "NY", true))
	if !ok || row.MustGet("Team") != value.NewBool(true) {
		t.Fatal("RowFor wrong")
	}

	// Lookup and BaseForKey.
	probe := tuple.MustNew(v.Schema(), value.NewInt(2), value.NewBool(false))
	if _, ok := v.Lookup(db, probe); ok {
		t.Fatal("hidden tuple must not be in view")
	}
	if base, ok := v.BaseForKey(db, probe); !ok || base.MustGet("Loc") != value.NewString("SF") {
		t.Fatal("BaseForKey should find the hidden base tuple")
	}
	probe4 := tuple.MustNew(v.Schema(), value.NewInt(4), value.NewBool(false))
	if _, ok := v.BaseForKey(db, probe4); ok {
		t.Fatal("BaseForKey should miss absent keys")
	}
}

// joinFixture builds CXD -> AB (the paper's figure).
func joinFixture(t testing.TB) (*schema.Database, *schema.Relation, *schema.Relation, *Join) {
	t.Helper()
	aDom := schema.MustDomain("ADom", value.NewString("a"), value.NewString("a1"), value.NewString("a2"))
	bDom := schema.MustDomain("BDom", value.NewInt(1), value.NewInt(2))
	cDom := schema.MustDomain("CDom", value.NewString("c1"), value.NewString("c2"))
	dDom := schema.MustDomain("DDom", value.NewInt(7), value.NewInt(8))
	ab := schema.MustRelation("AB", []schema.Attribute{
		{Name: "A", Domain: aDom},
		{Name: "B", Domain: bDom},
	}, []string{"A"})
	cxd := schema.MustRelation("CXD", []schema.Attribute{
		{Name: "C", Domain: cDom},
		{Name: "X", Domain: aDom},
		{Name: "D", Domain: dDom},
	}, []string{"C"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(ab); err != nil {
		t.Fatal(err)
	}
	if err := sch.AddRelation(cxd); err != nil {
		t.Fatal(err)
	}
	if err := sch.AddInclusion(schema.InclusionDependency{Child: "CXD", ChildAttrs: []string{"X"}, Parent: "AB"}); err != nil {
		t.Fatal(err)
	}
	parent := &Node{SP: Identity("ABv", ab)}
	root := &Node{SP: Identity("CXDv", cxd), Refs: []Ref{{Attrs: []string{"X"}, Target: parent}}}
	j, err := NewJoin("J", sch, root)
	if err != nil {
		t.Fatal(err)
	}
	return sch, ab, cxd, j
}

func TestJoinConstructionValidation(t *testing.T) {
	sch, ab, cxd, j := joinFixture(t)
	if j.Name() != "J" || len(j.Nodes()) != 2 {
		t.Fatal("join basics wrong")
	}
	if j.Schema().Arity() != 5 {
		t.Fatalf("view arity = %d, want 5", j.Schema().Arity())
	}
	if key := j.Schema().Key(); len(key) != 1 || key[0] != "C" {
		t.Fatalf("view key = %v (root's key expected)", key)
	}
	if j.NodeOfAttr("B") != 1 || j.NodeOfAttr("C") != 0 || j.NodeOfAttr("zz") != -1 {
		t.Fatal("NodeOfAttr wrong")
	}

	// Missing inclusion dependency is rejected.
	schNoInc := schema.NewDatabase()
	if err := schNoInc.AddRelation(ab); err != nil {
		t.Fatal(err)
	}
	if err := schNoInc.AddRelation(cxd); err != nil {
		t.Fatal(err)
	}
	parent := &Node{SP: Identity("ABv", ab)}
	root := &Node{SP: Identity("CXDv", cxd), Refs: []Ref{{Attrs: []string{"X"}, Target: parent}}}
	if _, err := NewJoin("Bad", schNoInc, root); err == nil ||
		!strings.Contains(err.Error(), "inclusion") {
		t.Fatalf("missing inclusion should fail, got %v", err)
	}

	// Relation used twice is rejected.
	dupRoot := &Node{SP: Identity("ABv", ab), Refs: []Ref{{Attrs: []string{"A"}, Target: &Node{SP: Identity("ABv2", ab)}}}}
	if _, err := NewJoin("Dup", sch, dupRoot); err == nil {
		t.Fatal("duplicate relation should fail")
	}

	// Join attribute not visible in the child view is rejected.
	selCXD := algebra.NewSelection(cxd)
	spNoX, err := NewSP("CXDnoX", selCXD, []string{"C", "D"})
	if err != nil {
		t.Fatal(err)
	}
	rootNoX := &Node{SP: spNoX, Refs: []Ref{{Attrs: []string{"X"}, Target: &Node{SP: Identity("ABv", ab)}}}}
	if _, err := NewJoin("NoX", sch, rootNoX); err == nil {
		t.Fatal("hidden join attribute should fail (SPJNF)")
	}
}

func TestJoinMaterializeAndRow(t *testing.T) {
	sch, ab, cxd, j := joinFixture(t)
	db := storage.Open(sch)
	abT := func(a string, b int64) tuple.T { return tuple.MustNew(ab, value.NewString(a), value.NewInt(b)) }
	cxdT := func(c, x string, d int64) tuple.T {
		return tuple.MustNew(cxd, value.NewString(c), value.NewString(x), value.NewInt(d))
	}
	if err := db.LoadAll(abT("a", 1), abT("a1", 2), cxdT("c1", "a", 7), cxdT("c2", "a1", 8)); err != nil {
		t.Fatal(err)
	}
	rows := j.Materialize(db)
	if rows.Len() != 2 {
		t.Fatalf("want 2 join rows, got %d", rows.Len())
	}
	want := tuple.MustNew(j.Schema(),
		value.NewString("c1"), value.NewString("a"), value.NewInt(7),
		value.NewString("a"), value.NewInt(1))
	if !rows.Contains(want) {
		t.Fatalf("missing row %s in %v", want, rows.Slice())
	}
	// RowForRoot.
	row, ok := j.RowForRoot(db, cxdT("c1", "a", 7))
	if !ok || !row.Equal(want) {
		t.Fatal("RowForRoot wrong")
	}
	// Lookup by key.
	got, ok := j.Lookup(db, want)
	if !ok || !got.Equal(want) {
		t.Fatal("Lookup wrong")
	}
	miss := tuple.MustNew(j.Schema(),
		value.NewString("c2"), value.NewString("a"), value.NewInt(7),
		value.NewString("a"), value.NewInt(1))
	if got, ok := j.Lookup(db, miss); !ok || got.Equal(miss) {
		t.Fatal("Lookup by key should return the actual row for c2")
	}
	// ProjectNode.
	p0 := j.ProjectNode(0, want)
	if p0.Relation().Name() != "CXDv" || p0.MustGet("C") != value.NewString("c1") {
		t.Fatalf("ProjectNode(0) = %s", p0)
	}
	p1 := j.ProjectNode(1, want)
	if p1.MustGet("B") != value.NewInt(1) {
		t.Fatalf("ProjectNode(1) = %s", p1)
	}
	// JoinConsistent.
	if err := j.JoinConsistent(want); err != nil {
		t.Fatalf("JoinConsistent on real row: %v", err)
	}
	bad := tuple.MustNew(j.Schema(),
		value.NewString("c1"), value.NewString("a"), value.NewInt(7),
		value.NewString("a1"), value.NewInt(1)) // X='a' but A='a1'
	if err := j.JoinConsistent(bad); err == nil {
		t.Fatal("inconsistent join attributes should fail")
	}
}

// TestJoinSelectionOnParentHidesRows: a selection on the parent node
// hides join rows whose parent fails it, even though the inclusion
// dependency holds.
func TestJoinSelectionOnParentHidesRows(t *testing.T) {
	sch, ab, cxd, _ := joinFixture(t)
	selAB := algebra.NewSelection(ab).MustAddTerm("B", value.NewInt(1))
	parent := &Node{SP: MustNewSP("ABsel", selAB, []string{"A", "B"})}
	root := &Node{SP: Identity("CXDv", cxd), Refs: []Ref{{Attrs: []string{"X"}, Target: parent}}}
	j, err := NewJoin("Jsel", sch, root)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.Open(sch)
	abT := func(a string, b int64) tuple.T { return tuple.MustNew(ab, value.NewString(a), value.NewInt(b)) }
	cxdT := func(c, x string, d int64) tuple.T {
		return tuple.MustNew(cxd, value.NewString(c), value.NewString(x), value.NewInt(d))
	}
	if err := db.LoadAll(abT("a", 1), abT("a1", 2), cxdT("c1", "a", 7), cxdT("c2", "a1", 8)); err != nil {
		t.Fatal(err)
	}
	rows := j.Materialize(db)
	if rows.Len() != 1 {
		t.Fatalf("parent selection should hide c2's row, got %d rows", rows.Len())
	}
}

// TestJoinThreeLevels exercises a chain of two references.
func TestJoinThreeLevels(t *testing.T) {
	d1 := schema.MustDomain("D1", value.NewString("g1"), value.NewString("g2"))
	d2 := schema.MustDomain("D2", value.NewString("m1"), value.NewString("m2"))
	d3 := schema.MustDomain("D3", value.NewString("t1"), value.NewString("t2"))
	vD := schema.MustDomain("VD", value.NewInt(0), value.NewInt(1))
	top := schema.MustRelation("TOP", []schema.Attribute{
		{Name: "T", Domain: d3},
		{Name: "TV", Domain: vD},
	}, []string{"T"})
	mid := schema.MustRelation("MID", []schema.Attribute{
		{Name: "M", Domain: d2},
		{Name: "MT", Domain: d3},
	}, []string{"M"})
	bot := schema.MustRelation("BOT", []schema.Attribute{
		{Name: "G", Domain: d1},
		{Name: "GM", Domain: d2},
	}, []string{"G"})
	sch := schema.NewDatabase()
	for _, r := range []*schema.Relation{top, mid, bot} {
		if err := sch.AddRelation(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sch.AddInclusion(schema.InclusionDependency{Child: "BOT", ChildAttrs: []string{"GM"}, Parent: "MID"}); err != nil {
		t.Fatal(err)
	}
	if err := sch.AddInclusion(schema.InclusionDependency{Child: "MID", ChildAttrs: []string{"MT"}, Parent: "TOP"}); err != nil {
		t.Fatal(err)
	}
	topN := &Node{SP: Identity("TOPv", top)}
	midN := &Node{SP: Identity("MIDv", mid), Refs: []Ref{{Attrs: []string{"MT"}, Target: topN}}}
	botN := &Node{SP: Identity("BOTv", bot), Refs: []Ref{{Attrs: []string{"GM"}, Target: midN}}}
	j, err := NewJoin("Chain", sch, botN)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.Open(sch)
	if err := db.LoadAll(
		tuple.MustNew(top, value.NewString("t1"), value.NewInt(0)),
		tuple.MustNew(mid, value.NewString("m1"), value.NewString("t1")),
		tuple.MustNew(bot, value.NewString("g1"), value.NewString("m1")),
	); err != nil {
		t.Fatal(err)
	}
	rows := j.Materialize(db)
	if rows.Len() != 1 {
		t.Fatalf("want 1 chained row, got %d", rows.Len())
	}
	row := rows.Slice()[0]
	if row.MustGet("TV") != value.NewInt(0) || row.MustGet("G") != value.NewString("g1") {
		t.Fatalf("chained row wrong: %s", row)
	}
}

// TestMaterializeWithSecondaryIndex: creating an index on a selecting
// attribute changes the scan strategy but not the result.
func TestMaterializeWithSecondaryIndex(t *testing.T) {
	sch, rel := empFixture(t)
	sel := algebra.NewSelection(rel).MustAddTerm("Loc", value.NewString("NY"))
	v, err := NewSP("V", sel, []string{"No", "Team"})
	if err != nil {
		t.Fatal(err)
	}
	db := storage.Open(sch)
	if err := db.Load("EMP",
		emp(t, rel, 1, "NY", true),
		emp(t, rel, 2, "SF", true),
		emp(t, rel, 3, "NY", false),
		emp(t, rel, 4, "SF", false),
	); err != nil {
		t.Fatal(err)
	}
	before := v.Materialize(db)
	if err := db.CreateIndex("EMP", "Loc"); err != nil {
		t.Fatal(err)
	}
	if !db.HasIndex("EMP", "Loc") {
		t.Fatal("index missing")
	}
	after := v.Materialize(db)
	if !before.Equal(after) {
		t.Fatalf("indexed materialization differs: %v vs %v", before.Slice(), after.Slice())
	}
	// Index stays correct through a view update cycle.
	if err := db.Apply(updateTranslation(t, rel)); err != nil {
		t.Fatal(err)
	}
	want := tuple.NewSet()
	for _, bt := range db.Tuples("EMP") {
		if row, ok := v.RowFor(bt); ok {
			want.Add(row)
		}
	}
	if !v.Materialize(db).Equal(want) {
		t.Fatal("index stale after updates")
	}
	// Errors.
	if err := db.CreateIndex("missing", "Loc"); err == nil {
		t.Fatal("index on unknown relation should fail")
	}
	if db.HasIndex("missing", "Loc") {
		t.Fatal("HasIndex on unknown relation should be false")
	}
}

// updateTranslation builds a mixed translation exercising all op kinds.
func updateTranslation(t testing.TB, rel *schema.Relation) *update.Translation {
	t.Helper()
	return update.NewTranslation(
		update.NewDelete(emp(t, rel, 4, "SF", false)),
		update.NewReplace(emp(t, rel, 2, "SF", true), emp(t, rel, 2, "NY", true)),
	)
}

// TestDAGViewConstructionErrors covers the DAG constructor's
// validation beyond what the core tests exercise.
func TestDAGViewConstructionErrors(t *testing.T) {
	sch, ab, cxd, _ := joinFixture(t)
	_ = cxd
	// Nil root.
	if _, err := NewJoinDAG("NilRoot", sch, nil); err == nil {
		t.Fatal("nil root should fail")
	}
	// Cycle: AB -> CXD -> AB. Requires matching inclusions; build a
	// two-node cycle schema.
	kd := schema.MustDomain("CycKD", value.NewString("k1"), value.NewString("k2"))
	r1 := schema.MustRelation("R1", []schema.Attribute{
		{Name: "R1K", Domain: kd},
		{Name: "R1F", Domain: kd},
	}, []string{"R1K"})
	r2 := schema.MustRelation("R2", []schema.Attribute{
		{Name: "R2K", Domain: kd},
		{Name: "R2F", Domain: kd},
	}, []string{"R2K"})
	csch := schema.NewDatabase()
	if err := csch.AddRelation(r1); err != nil {
		t.Fatal(err)
	}
	if err := csch.AddRelation(r2); err != nil {
		t.Fatal(err)
	}
	if err := csch.AddInclusion(schema.InclusionDependency{Child: "R1", ChildAttrs: []string{"R1F"}, Parent: "R2"}); err != nil {
		t.Fatal(err)
	}
	if err := csch.AddInclusion(schema.InclusionDependency{Child: "R2", ChildAttrs: []string{"R2F"}, Parent: "R1"}); err != nil {
		t.Fatal(err)
	}
	n1 := &Node{SP: Identity("R1v", r1)}
	n2 := &Node{SP: Identity("R2v", r2)}
	n1.Refs = []Ref{{Attrs: []string{"R1F"}, Target: n2}}
	n2.Refs = []Ref{{Attrs: []string{"R2F"}, Target: n1}}
	if _, err := NewJoinDAG("Cycle", csch, n1); err == nil ||
		!strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle should be rejected, got %v", err)
	}
	// Two distinct nodes over one relation.
	dup1 := &Node{SP: Identity("ABv", ab)}
	dup2 := &Node{SP: Identity("ABv2", ab)}
	root := &Node{SP: Identity("CXDv", cxd), Refs: []Ref{
		{Attrs: []string{"X"}, Target: dup1},
		{Attrs: []string{"X"}, Target: dup2},
	}}
	if _, err := NewJoinDAG("DupRel", sch, root); err == nil {
		t.Fatal("two nodes over one relation should fail")
	}
	// Missing inclusion dependency.
	nosch := schema.NewDatabase()
	if err := nosch.AddRelation(ab); err != nil {
		t.Fatal(err)
	}
	if err := nosch.AddRelation(cxd); err != nil {
		t.Fatal(err)
	}
	rootNoInc := &Node{SP: Identity("CXDv", cxd), Refs: []Ref{{Attrs: []string{"X"}, Target: &Node{SP: Identity("ABv", ab)}}}}
	if _, err := NewJoinDAG("NoInc", nosch, rootNoInc); err == nil {
		t.Fatal("missing inclusion should fail")
	}
	// Hidden join attribute.
	selNoX := algebra.NewSelection(cxd)
	spNoX, err := NewSP("CXDnoX2", selNoX, []string{"C", "D"})
	if err != nil {
		t.Fatal(err)
	}
	rootNoX := &Node{SP: spNoX, Refs: []Ref{{Attrs: []string{"X"}, Target: &Node{SP: Identity("ABv", ab)}}}}
	if _, err := NewJoinDAG("NoX", sch, rootNoX); err == nil {
		t.Fatal("hidden join attribute should fail")
	}
}
