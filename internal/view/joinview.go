package view

import (
	"fmt"
	"strings"

	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
)

// A Node is one relation (wrapped in an SP view, possibly the identity)
// of a join view's query graph. Refs point in the many-to-one
// direction: from this node to the nodes whose keys it references,
// i.e. "away from the root", so the root is the node no other node
// references and "the key of the root is the key of the entire view".
type Node struct {
	SP   *SP
	Refs []Ref
}

// A Ref is one reference connection (§5-1): an extension join from
// Attrs of the owning node to Target's base key, backed by an inclusion
// dependency between the base relations.
type Ref struct {
	Attrs  []string
	Target *Node
}

// A Join is a select-project-join view in SPJNF whose query graph is a
// rooted tree of reference connections.
type Join struct {
	name  string
	root  *Node
	nodes []*Node // preorder
	vrel  *schema.Relation
	// attrNode maps each view attribute name to the preorder index of
	// the node that contributes it.
	attrNode map[string]int
	// dag marks views built with NewJoinDAG (shared target nodes).
	dag bool
	// rootRel is the root node's base relation name; nodeRels holds the
	// base relation name of every node. Both back the reverse-index walk
	// in DeltaForChange.
	rootRel  string
	nodeRels map[string]bool
	// inDeps maps a node's base relation name to the schema inclusion
	// dependency indexes of the view's reference connections *into* that
	// relation — the edges to walk backwards (via Source.Referencers)
	// from a changed tuple toward the root tuples whose rows it affects.
	inDeps map[string][]int
}

// NewJoin validates and builds a join view over the query graph rooted
// at root. sch supplies the inclusion dependencies that must back every
// reference connection. Validation enforces the paper's requirements:
//
//   - every node's SP view is over a distinct base relation and the
//     view attribute names are globally distinct (SPJNF keeps join
//     attributes visible under their own names);
//   - each Ref's Attrs are projected in the owning node's view and
//     their domains match the target base key's domains in order
//     (extension join);
//   - the schema records an inclusion dependency from the owning base
//     relation's Attrs to the target base relation (reference
//     connection);
//   - the graph is a tree: every node except the root is referenced
//     exactly once and there are no cycles.
func NewJoin(name string, sch *schema.Database, root *Node) (*Join, error) {
	if root == nil {
		return nil, fmt.Errorf("view: join %s has no root", name)
	}
	j := &Join{name: name, root: root, attrNode: make(map[string]int), inDeps: make(map[string][]int)}
	seenRel := make(map[string]bool)
	seenNode := make(map[*Node]bool)

	var attrs []schema.Attribute
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.SP == nil {
			return fmt.Errorf("view: join %s has a node without an SP view", name)
		}
		if seenNode[n] {
			return fmt.Errorf("view: join %s query graph is not a tree (node %s referenced twice)", name, n.SP.Name())
		}
		seenNode[n] = true
		baseName := n.SP.Base().Name()
		if seenRel[baseName] {
			return fmt.Errorf("view: join %s uses relation %s twice (each node must refer to a unique relation)", name, baseName)
		}
		seenRel[baseName] = true
		idx := len(j.nodes)
		j.nodes = append(j.nodes, n)
		for _, a := range n.SP.Schema().Attributes() {
			if _, dup := j.attrNode[a.Name]; dup {
				return fmt.Errorf("view: join %s attribute %s appears in two nodes", name, a.Name)
			}
			j.attrNode[a.Name] = idx
			attrs = append(attrs, a)
		}
		for _, ref := range n.Refs {
			if ref.Target == nil {
				return fmt.Errorf("view: join %s: ref from %s has no target", name, n.SP.Name())
			}
			tkey := ref.Target.SP.Base().Key()
			if len(ref.Attrs) != len(tkey) {
				return fmt.Errorf("view: join %s: ref %s->%s has %d attributes, target key has %d",
					name, n.SP.Name(), ref.Target.SP.Name(), len(ref.Attrs), len(tkey))
			}
			for i, a := range ref.Attrs {
				va, ok := n.SP.Schema().Attribute(a)
				if !ok {
					return fmt.Errorf("view: join %s: join attribute %s not visible in node %s (SPJNF requires join attributes in the view)",
						name, a, n.SP.Name())
				}
				ta, _ := ref.Target.SP.Base().Attribute(tkey[i])
				if va.Domain != ta.Domain {
					return fmt.Errorf("view: join %s: domain mismatch on join attribute %s (%s vs %s)",
						name, a, va.Domain.Name(), ta.Domain.Name())
				}
			}
			if !j.recordRefEdge(sch, baseName, ref) {
				return fmt.Errorf("view: join %s: no inclusion dependency %s[%s] ⊆ %s[key] (reference connection required)",
					name, baseName, strings.Join(ref.Attrs, ","), ref.Target.SP.Base().Name())
			}
			if err := walk(ref.Target); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}

	vrel, err := schema.NewRelation(name, attrs, root.SP.Base().Key())
	if err != nil {
		return nil, fmt.Errorf("view: join %s: %w", name, err)
	}
	j.vrel = vrel
	j.finishIVMIndex()
	return j, nil
}

// MustNewJoin is NewJoin, panicking on error.
func MustNewJoin(name string, sch *schema.Database, root *Node) *Join {
	j, err := NewJoin(name, sch, root)
	if err != nil {
		panic(err)
	}
	return j
}

// inclusionIndex returns the position in sch.Inclusions() of the
// dependency backing the reference connection child[attrs] ⊆
// parent[key], or -1 if the schema records none. The position doubles
// as the dependency's slot in storage's reverse reference index.
func inclusionIndex(sch *schema.Database, child string, attrs []string, parent string) int {
	for i, d := range sch.Inclusions() {
		if d.Child != child || d.Parent != parent || len(d.ChildAttrs) != len(attrs) {
			continue
		}
		match := true
		for k := range attrs {
			if d.ChildAttrs[k] != attrs[k] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// recordRefEdge validates that ref is backed by an inclusion dependency
// from child and, if so, records the dependency's index under the
// target relation for DeltaForChange's reverse walk. It reports whether
// the dependency exists.
func (j *Join) recordRefEdge(sch *schema.Database, child string, ref Ref) bool {
	parent := ref.Target.SP.Base().Name()
	idx := inclusionIndex(sch, child, ref.Attrs, parent)
	if idx < 0 {
		return false
	}
	for _, have := range j.inDeps[parent] {
		if have == idx {
			return true
		}
	}
	j.inDeps[parent] = append(j.inDeps[parent], idx)
	return true
}

// finishIVMIndex records the relation-name lookups DeltaForChange needs
// once the node walk has succeeded.
func (j *Join) finishIVMIndex() {
	j.rootRel = j.root.SP.Base().Name()
	j.nodeRels = make(map[string]bool, len(j.nodes))
	for _, n := range j.nodes {
		j.nodeRels[n.SP.Base().Name()] = true
	}
}

// Name implements View.
func (j *Join) Name() string { return j.name }

// Schema implements View. The view key is the root's key.
func (j *Join) Schema() *schema.Relation { return j.vrel }

// Root returns the root node.
func (j *Join) Root() *Node { return j.root }

// Nodes returns the nodes in preorder.
func (j *Join) Nodes() []*Node { return j.nodes }

// NodeOfAttr returns the preorder index of the node contributing the
// named view attribute, or -1.
func (j *Join) NodeOfAttr(attr string) int {
	i, ok := j.attrNode[attr]
	if !ok {
		return -1
	}
	return i
}

// Materialize implements View: for every root base tuple passing the
// root's SP view, follow each reference to the (unique, by the key
// dependency) referenced tuples; the row appears iff every referenced
// tuple exists and passes its node's SP selection. With the inclusion
// dependencies enforced by storage, identity SP views make every root
// row appear.
func (j *Join) Materialize(db storage.Source) *tuple.Set {
	out := tuple.NewSet()
	sc := j.newRowScratch()
	for _, rt := range db.Tuples(j.root.SP.Base().Name()) {
		if row, ok := j.rowForRoot(db, rt, sc); ok {
			out.Add(row)
		}
	}
	return out
}

// rowScratch holds the per-row assembly maps of rowForRoot so one
// materialization (or delta pass) reuses them across root tuples
// instead of allocating per row.
type rowScratch struct {
	vals     map[string]value.Value
	resolved map[*Node]tuple.T
}

func (j *Join) newRowScratch() *rowScratch {
	return &rowScratch{
		vals:     make(map[string]value.Value, j.vrel.Arity()),
		resolved: make(map[*Node]tuple.T, len(j.nodes)),
	}
}

// RowForRoot assembles the join-view row generated by the given root
// base tuple, or ok=false if any node's selection fails, a reference
// does not resolve, or (in a DAG view) two reference paths to a shared
// node resolve to different tuples.
func (j *Join) RowForRoot(db storage.Source, rootBase tuple.T) (tuple.T, bool) {
	return j.rowForRoot(db, rootBase, j.newRowScratch())
}

func (j *Join) rowForRoot(db storage.Source, rootBase tuple.T, sc *rowScratch) (tuple.T, bool) {
	vals, resolved := sc.vals, sc.resolved
	clear(vals)
	clear(resolved)
	var fill func(n *Node, base tuple.T) bool
	fill = func(n *Node, base tuple.T) bool {
		if prev, seen := resolved[n]; seen {
			// Shared node (DAG): all paths must converge on one tuple.
			return prev.Equal(base)
		}
		resolved[n] = base
		row, ok := n.SP.RowFor(base)
		if !ok {
			return false
		}
		for i, a := range n.SP.Schema().Attributes() {
			vals[a.Name] = row.At(i)
		}
		for _, ref := range n.Refs {
			probe, ok := refProbe(n, ref, base)
			if !ok {
				return false
			}
			parent, ok := db.LookupKey(probe)
			if !ok {
				return false
			}
			if !fill(ref.Target, parent) {
				return false
			}
		}
		return true
	}
	if !fill(j.root, rootBase) {
		return tuple.T{}, false
	}
	t, err := tuple.FromMap(j.vrel, vals)
	if err != nil {
		panic(fmt.Sprintf("view: assembling row of %s: %v", j.name, err))
	}
	return t, true
}

// refProbe builds a key probe for ref's target from the referencing
// base tuple.
func refProbe(n *Node, ref Ref, base tuple.T) (tuple.T, bool) {
	target := ref.Target.SP.Base()
	attrs := target.Attributes()
	vals := make([]value.Value, len(attrs))
	keyVals := make(map[string]value.Value, len(ref.Attrs))
	for i, a := range ref.Attrs {
		v, ok := base.Get(a)
		if !ok {
			return tuple.T{}, false
		}
		keyVals[target.Key()[i]] = v
	}
	for i, a := range attrs {
		if v, ok := keyVals[a.Name]; ok {
			vals[i] = v
		} else {
			vals[i] = a.Domain.At(0)
		}
	}
	return tuple.MustNew(target, vals...), true
}

// ProjectNode projects a view tuple onto the SP view of the node at
// preorder index idx ("take the projections of the join view to the
// attributes listed in each SP view").
func (j *Join) ProjectNode(idx int, viewTuple tuple.T) tuple.T {
	n := j.nodes[idx]
	sch := n.SP.Schema()
	vals := make([]value.Value, sch.Arity())
	for i, a := range sch.Attributes() {
		vals[i] = viewTuple.MustGet(a.Name)
	}
	return tuple.MustNew(sch, vals...)
}

// JoinConsistent checks that a (user-supplied) view tuple equates join
// attributes with the referenced keys: for every ref, the values at the
// referencing attributes equal the values at the target's key
// attributes. Rows produced by Materialize always satisfy this.
func (j *Join) JoinConsistent(viewTuple tuple.T) error {
	for _, n := range j.nodes {
		for _, ref := range n.Refs {
			tkey := ref.Target.SP.Base().Key()
			for i, a := range ref.Attrs {
				av := viewTuple.MustGet(a)
				kv := viewTuple.MustGet(tkey[i])
				if av != kv {
					return fmt.Errorf("view: %s: join attribute %s=%s disagrees with %s=%s",
						j.name, a, av, tkey[i], kv)
				}
			}
		}
	}
	return nil
}

// Lookup returns the current view row whose (root) key matches probe's
// key; ok is false if no such row.
func (j *Join) Lookup(db storage.Source, probe tuple.T) (tuple.T, bool) {
	rootBase, ok := j.RootBaseForKey(db, probe)
	if !ok {
		return tuple.T{}, false
	}
	return j.RowForRoot(db, rootBase)
}

// RootBaseForKey returns the root base tuple whose key matches probe's
// key (probe is of the view schema).
func (j *Join) RootBaseForKey(db storage.Source, probe tuple.T) (tuple.T, bool) {
	return db.LookupKey(keyProbe(j.root.SP.Base(), probe))
}
