package view

import (
	"fmt"
	"strings"

	"viewupdate/internal/schema"
)

// This file implements the paper's §5-1 footnote: "We can relax this
// constraint to allow rooted DAGs if we relax the five criteria
// somewhat." A rooted DAG shares target nodes between references: two
// different relations may reference the same node (still one node per
// relation). The extension's semantics, chosen here and documented in
// DESIGN.md:
//
//   - a view row exists only if every reference path to a shared node
//     resolves to the same tuple (the chains converge); divergent rows
//     simply do not appear;
//   - SPJ-I processes each node once (its projection from the view
//     tuple is unique, since its attributes appear once);
//   - SPJ-R walks nodes in topological order; a node enters State R
//     only if every referencing node delivered State R, otherwise
//     State I — the conservative join of the paper's per-edge states;
//   - updates to a shared node affect view rows through every path, so
//     translations may have more view side effects than on trees (the
//     criteria relaxation the footnote alludes to); exact validity is
//     checked with ValidRequested, as for all join views.

// NewJoinDAG validates and builds a join view over a rooted DAG: like
// NewJoin, but a node may be the target of several references. Cycles,
// duplicate relations across distinct nodes, and non-root nodes with no
// incoming reference remain errors.
func NewJoinDAG(name string, sch *schema.Database, root *Node) (*Join, error) {
	if root == nil {
		return nil, fmt.Errorf("view: join %s has no root", name)
	}
	j := &Join{name: name, root: root, attrNode: make(map[string]int), dag: true, inDeps: make(map[string][]int)}
	seenRel := make(map[string]bool)
	nodeIdx := make(map[*Node]int)
	inProgress := make(map[*Node]bool)

	var attrs []schema.Attribute
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if inProgress[n] {
			return fmt.Errorf("view: join %s query graph has a cycle through %s", name, n.SP.Name())
		}
		if _, done := nodeIdx[n]; done {
			return nil // shared node: visit once
		}
		if n.SP == nil {
			return fmt.Errorf("view: join %s has a node without an SP view", name)
		}
		baseName := n.SP.Base().Name()
		if seenRel[baseName] {
			return fmt.Errorf("view: join %s uses relation %s in two distinct nodes", name, baseName)
		}
		seenRel[baseName] = true
		inProgress[n] = true
		idx := len(j.nodes)
		nodeIdx[n] = idx
		j.nodes = append(j.nodes, n)
		for _, a := range n.SP.Schema().Attributes() {
			if _, dup := j.attrNode[a.Name]; dup {
				return fmt.Errorf("view: join %s attribute %s appears in two nodes", name, a.Name)
			}
			j.attrNode[a.Name] = idx
			attrs = append(attrs, a)
		}
		for _, ref := range n.Refs {
			if ref.Target == nil {
				return fmt.Errorf("view: join %s: ref from %s has no target", name, n.SP.Name())
			}
			tkey := ref.Target.SP.Base().Key()
			if len(ref.Attrs) != len(tkey) {
				return fmt.Errorf("view: join %s: ref %s->%s has %d attributes, target key has %d",
					name, n.SP.Name(), ref.Target.SP.Name(), len(ref.Attrs), len(tkey))
			}
			for i, a := range ref.Attrs {
				va, ok := n.SP.Schema().Attribute(a)
				if !ok {
					return fmt.Errorf("view: join %s: join attribute %s not visible in node %s", name, a, n.SP.Name())
				}
				ta, _ := ref.Target.SP.Base().Attribute(tkey[i])
				if va.Domain != ta.Domain {
					return fmt.Errorf("view: join %s: domain mismatch on join attribute %s", name, a)
				}
			}
			if !j.recordRefEdge(sch, baseName, ref) {
				return fmt.Errorf("view: join %s: no inclusion dependency %s[%s] ⊆ %s[key]",
					name, baseName, strings.Join(ref.Attrs, ","), ref.Target.SP.Base().Name())
			}
			if err := walk(ref.Target); err != nil {
				return err
			}
		}
		delete(inProgress, n)
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}

	vrel, err := schema.NewRelation(name, attrs, root.SP.Base().Key())
	if err != nil {
		return nil, fmt.Errorf("view: join %s: %w", name, err)
	}
	j.vrel = vrel
	j.finishIVMIndex()
	return j, nil
}

// MustNewJoinDAG is NewJoinDAG, panicking on error.
func MustNewJoinDAG(name string, sch *schema.Database, root *Node) *Join {
	j, err := NewJoinDAG(name, sch, root)
	if err != nil {
		panic(err)
	}
	return j
}

// IsDAG reports whether the view was built with NewJoinDAG (shared
// target nodes allowed).
func (j *Join) IsDAG() bool { return j.dag }
