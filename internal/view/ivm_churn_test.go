package view_test

import (
	"math/rand"
	"testing"

	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/workload"
)

// These churn property tests pin incremental view maintenance to full
// rebuilds: a maintained set patched with Join.DeltaForChange (or, for
// SP views, the per-tuple RowFor delta the server's cache patcher uses)
// must stay byte-for-byte equal to Materialize after every commit of a
// randomized base-update stream — payload replaces at every tree level,
// foreign-key retargets, root and non-root inserts and deletes, and
// multi-relation translations.

// sameRows compares two sets byte-for-byte via their canonical
// encodings in deterministic order.
func sameRows(a, b *tuple.Set) bool {
	as, bs := a.Slice(), b.Slice()
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i].Encode() != bs[i].Encode() {
			return false
		}
	}
	return true
}

// patched returns set edited by the row delta, copy-on-write.
func patched(set, removedRows, addedRows *tuple.Set) *tuple.Set {
	out := set.Clone()
	for _, r := range removedRows.Slice() {
		out.Remove(r)
	}
	for _, r := range addedRows.Slice() {
		out.Add(r)
	}
	return out
}

// treeChurn generates random base translations against a TreeWorkload.
type treeChurn struct {
	w   *workload.TreeWorkload
	rng *rand.Rand
}

// referencedParent resolves the parent relation of child's FK attr.
func referencedParent(sch *schema.Database, child, attr string) string {
	for _, d := range sch.InclusionsFrom(child) {
		if len(d.ChildAttrs) == 1 && d.ChildAttrs[0] == attr {
			return d.Parent
		}
	}
	return ""
}

// randomExisting picks a random current tuple of rel, or ok=false.
func (s *treeChurn) randomExisting(rel *schema.Relation) (tuple.T, bool) {
	ts := s.w.DB.Tuples(rel.Name())
	if len(ts) == 0 {
		return tuple.T{}, false
	}
	return ts[s.rng.Intn(len(ts))], true
}

// freshTuple builds a tuple of rel under an unused key, foreign keys
// pointing at random existing parent tuples.
func (s *treeChurn) freshTuple(rel *schema.Relation) (tuple.T, bool) {
	used := make(map[int64]bool)
	for _, t := range s.w.DB.Tuples(rel.Name()) {
		used[t.At(0).Int()] = true
	}
	keyDom := rel.Attributes()[0].Domain
	var key value.Value
	found := false
	for i := 0; i < 64 && !found; i++ {
		kv := keyDom.Values()[s.rng.Intn(keyDom.Size())]
		if !used[kv.Int()] {
			key, found = kv, true
		}
	}
	if !found {
		return tuple.T{}, false
	}
	vals := make([]value.Value, rel.Arity())
	for i, a := range rel.Attributes() {
		switch {
		case i == 0:
			vals[i] = key
		case a.Name[0] == 'P':
			vals[i] = a.Domain.Values()[s.rng.Intn(a.Domain.Size())]
		default: // foreign key
			target := referencedParent(s.w.Schema, rel.Name(), a.Name)
			parent, ok := s.randomExisting(s.w.Schema.Relation(target))
			if !ok {
				return tuple.T{}, false
			}
			vals[i] = parent.At(0)
		}
	}
	return tuple.MustNew(rel, vals...), true
}

// randomOp draws one base operation. The mix favors non-root payload
// replaces and FK retargets — the cases the old verifier could only
// handle by rematerializing — but also exercises root deletes, inserts
// at every level, and (sometimes invalid, then skipped) non-root
// deletes.
func (s *treeChurn) randomOp() (update.Op, bool) {
	rels := s.w.Relations
	rel := rels[s.rng.Intn(len(rels))]
	switch c := s.rng.Intn(10); {
	case c < 4: // payload replace anywhere
		old, ok := s.randomExisting(rel)
		if !ok {
			return update.Op{}, false
		}
		pa := rel.Attributes()[1]
		nv := pa.Domain.Values()[s.rng.Intn(pa.Domain.Size())]
		if nv == old.At(1) {
			return update.Op{}, false
		}
		return update.NewReplace(old, old.MustWith(pa.Name, nv)), true
	case c < 7: // FK retarget anywhere a relation has FKs
		if rel.Arity() < 3 {
			return update.Op{}, false
		}
		old, ok := s.randomExisting(rel)
		if !ok {
			return update.Op{}, false
		}
		fk := rel.Attributes()[2+s.rng.Intn(rel.Arity()-2)]
		target := referencedParent(s.w.Schema, rel.Name(), fk.Name)
		parent, ok := s.randomExisting(s.w.Schema.Relation(target))
		if !ok {
			return update.Op{}, false
		}
		if parent.At(0) == old.MustGet(fk.Name) {
			return update.Op{}, false
		}
		return update.NewReplace(old, old.MustWith(fk.Name, parent.At(0))), true
	case c < 8: // insert at any level
		t, ok := s.freshTuple(rel)
		if !ok {
			return update.Op{}, false
		}
		return update.NewInsert(t), true
	case c < 9: // root delete (always reference-safe)
		old, ok := s.randomExisting(rels[0])
		if !ok {
			return update.Op{}, false
		}
		return update.NewDelete(old), true
	default: // non-root delete; rejected by Apply when referenced
		old, ok := s.randomExisting(rel)
		if !ok {
			return update.Op{}, false
		}
		return update.NewDelete(old), true
	}
}

// randomTranslation combines up to three ops on distinct tuples.
func (s *treeChurn) randomTranslation() *update.Translation {
	tr := update.NewTranslation()
	touched := make(map[string]bool)
	n := 1 + s.rng.Intn(3)
	for i := 0; i < n; i++ {
		op, ok := s.randomOp()
		if !ok {
			continue
		}
		var key string
		if op.Kind == update.Replace {
			key = op.Old.Key()
		} else {
			key = op.Tuple.Key()
		}
		if touched[key] {
			continue
		}
		touched[key] = true
		tr.Add(op)
	}
	return tr
}

func runTreeChurn(t *testing.T, cfg workload.TreeConfig, iters int) {
	t.Helper()
	w := workload.MustNewTree(cfg)
	maintained := w.View.Materialize(w.DB)
	s := &treeChurn{w: w, rng: rand.New(rand.NewSource(cfg.Seed + 1))}

	applied := 0
	for i := 0; i < iters; i++ {
		tr := s.randomTranslation()
		if tr.Len() == 0 {
			continue
		}
		ov := storage.NewOverlay(w.DB)
		if err := ov.Apply(tr); err != nil {
			continue // e.g. deleting a referenced non-root tuple
		}
		remRows, addRows := w.View.DeltaForChange(w.DB, ov, tr.Removed().Slice(), tr.Added().Slice())
		for _, r := range remRows.Slice() {
			if addRows.Contains(r) {
				t.Fatalf("iter %d: row in both delta sets: %s", i, r)
			}
			if !maintained.Contains(r) {
				t.Fatalf("iter %d: removed row was not maintained: %s", i, r)
			}
		}
		got := patched(maintained, remRows, addRows)
		want := w.View.Materialize(ov)
		if !sameRows(got, want) {
			t.Fatalf("iter %d: IVM diverges from rebuild after %s\n got %d rows, want %d",
				i, tr, got.Len(), want.Len())
		}
		if err := w.DB.Apply(tr); err != nil {
			t.Fatalf("iter %d: overlay accepted but database rejected: %v", i, err)
		}
		maintained = got
		applied++
	}
	if applied < iters/2 {
		t.Fatalf("only %d/%d random translations were applicable", applied, iters)
	}
	if !sameRows(maintained, w.View.Materialize(w.DB)) {
		t.Fatal("final maintained set diverges from full rebuild")
	}
}

func TestIVMChurnTreeDepth2Fanout2(t *testing.T) {
	runTreeChurn(t, workload.TreeConfig{
		Depth: 2, Fanout: 2, Keys: 40, TuplesPerRelation: 24, Seed: 7,
	}, 120)
}

func TestIVMChurnTreeDepth3Fanout1(t *testing.T) {
	runTreeChurn(t, workload.TreeConfig{
		Depth: 3, Fanout: 1, Keys: 32, TuplesPerRelation: 20, Seed: 11,
	}, 120)
}

// TestIVMChurnSP pins the SP patching math the server's cache patcher
// uses: removed/added base tuples map through SP.RowFor onto the exact
// view-row delta.
func TestIVMChurnSP(t *testing.T) {
	w := workload.MustNewSP(workload.SPConfig{
		Keys: 64, Attrs: 3, DomainSize: 4, SelectingAttrs: 1, HiddenAttrs: 1,
		Tuples: 40, Seed: 13,
	})
	rng := rand.New(rand.NewSource(17))
	maintained := w.View.Materialize(w.DB)

	applied := 0
	for i := 0; i < 150; i++ {
		ts := w.DB.Tuples(w.Rel.Name())
		if len(ts) == 0 {
			break
		}
		tr := update.NewTranslation()
		switch rng.Intn(3) {
		case 0: // replace a random attribute (may toggle visibility)
			old := ts[rng.Intn(len(ts))]
			a := w.Rel.Attributes()[1+rng.Intn(w.Rel.Arity()-1)]
			nv := a.Domain.Values()[rng.Intn(a.Domain.Size())]
			if nv == old.MustGet(a.Name) {
				continue
			}
			tr.Add(update.NewReplace(old, old.MustWith(a.Name, nv)))
		case 1: // delete
			tr.Add(update.NewDelete(ts[rng.Intn(len(ts))]))
		default: // insert under a fresh key
			used := make(map[int64]bool)
			for _, t := range ts {
				used[t.At(0).Int()] = true
			}
			keyDom := w.Rel.Attributes()[0].Domain
			kv := keyDom.Values()[rng.Intn(keyDom.Size())]
			if used[kv.Int()] {
				continue
			}
			vals := make([]value.Value, w.Rel.Arity())
			vals[0] = kv
			for ai := 1; ai < w.Rel.Arity(); ai++ {
				d := w.Rel.Attributes()[ai].Domain
				vals[ai] = d.Values()[rng.Intn(d.Size())]
			}
			tr.Add(update.NewInsert(tuple.MustNew(w.Rel, vals...)))
		}
		ov := storage.NewOverlay(w.DB)
		if err := ov.Apply(tr); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		remRows, addRows := tuple.NewSet(), tuple.NewSet()
		for _, u := range tr.Removed().Slice() {
			if row, ok := w.View.RowFor(u); ok {
				remRows.Add(row)
			}
		}
		for _, u := range tr.Added().Slice() {
			if row, ok := w.View.RowFor(u); ok {
				addRows.Add(row)
			}
		}
		got := patched(maintained, remRows, addRows)
		want := w.View.Materialize(ov)
		if !sameRows(got, want) {
			t.Fatalf("iter %d: SP patch diverges from rebuild after %s", i, tr)
		}
		if err := w.DB.Apply(tr); err != nil {
			t.Fatal(err)
		}
		maintained = got
		applied++
	}
	if applied < 50 {
		t.Fatalf("only %d SP translations applied", applied)
	}
	if !sameRows(maintained, w.View.Materialize(w.DB)) {
		t.Fatal("final maintained SP set diverges from full rebuild")
	}
}
