// Package view implements the paper's view class: select-project (SP)
// views over a single BCNF relation, and select-project-join (SPJ)
// views in SPJNF whose joins are reference connections forming a rooted
// tree.
package view

import (
	"fmt"

	"viewupdate/internal/algebra"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
)

// A View is anything that can be materialized from a database state.
// The two implementations are *SP and *Join.
type View interface {
	// Name returns the view's name.
	Name() string
	// Schema returns the relation schema of the view rows.
	Schema() *schema.Relation
	// Materialize computes the view extension on db.
	Materialize(db storage.Source) *tuple.Set
}

// An SP view is a selection and projection of one base relation. The
// paper's requirements, enforced at construction: the selection is a
// conjunction of "attribute ∈ set" terms, all key attributes are
// projected (so "the key of the database is the key of the view"), and
// any selecting attribute may be projected out.
type SP struct {
	name string
	base *schema.Relation
	sel  *algebra.Selection
	proj *algebra.Projection
	vrel *schema.Relation
}

// NewSP builds an SP view named name over sel's relation, projecting
// the given attributes (which must include the base key).
func NewSP(name string, sel *algebra.Selection, projAttrs []string) (*SP, error) {
	base := sel.Relation()
	proj, err := algebra.NewProjection(base, projAttrs)
	if err != nil {
		return nil, err
	}
	vrel, err := proj.DerivedSchema(name)
	if err != nil {
		return nil, fmt.Errorf("view: %s: %w", name, err)
	}
	return &SP{name: name, base: base, sel: sel.Clone(), proj: proj, vrel: vrel}, nil
}

// MustNewSP is NewSP, panicking on error.
func MustNewSP(name string, sel *algebra.Selection, projAttrs []string) *SP {
	v, err := NewSP(name, sel, projAttrs)
	if err != nil {
		panic(err)
	}
	return v
}

// Identity returns the identity view of base ("the SP view could be the
// identity view, i.e., no selection or projection").
func Identity(name string, base *schema.Relation) *SP {
	return MustNewSP(name, algebra.NewSelection(base), base.AttributeNames())
}

// Name implements View.
func (v *SP) Name() string { return v.name }

// Base returns the underlying relation schema.
func (v *SP) Base() *schema.Relation { return v.base }

// Selection returns the view's selection condition.
func (v *SP) Selection() *algebra.Selection { return v.sel }

// Projection returns the view's projection.
func (v *SP) Projection() *algebra.Projection { return v.proj }

// Schema implements View: the derived relation schema, whose key is the
// base key.
func (v *SP) Schema() *schema.Relation { return v.vrel }

// IsIdentity reports whether the view has no selection and keeps all
// attributes.
func (v *SP) IsIdentity() bool { return v.sel.IsTrue() && v.proj.IsIdentity() }

// ProjectedOut returns the base attributes not visible in the view.
func (v *SP) ProjectedOut() []string { return v.proj.RemovedAttributes() }

// RowFor maps a base tuple to its view row; ok is false if the tuple
// fails the selection.
func (v *SP) RowFor(base tuple.T) (tuple.T, bool) {
	if !v.sel.Matches(base) {
		return tuple.T{}, false
	}
	row, err := v.proj.Apply(v.vrel, base)
	if err != nil {
		panic(fmt.Sprintf("view: projecting %s into %s: %v", base, v.name, err))
	}
	return row, true
}

// Materialize implements View. When the base relation carries a
// secondary index on one of the view's selecting attributes, only the
// tuples holding selecting values of that attribute are visited.
func (v *SP) Materialize(db storage.Source) *tuple.Set {
	out := tuple.NewSet()
	base := v.base.Name()
	for _, attr := range v.sel.SelectingAttributes() {
		if db.HasIndex(base, attr) {
			db.ScanValues(base, attr, v.sel.SelectingValues(attr), func(t tuple.T) bool {
				if row, ok := v.RowFor(t); ok {
					out.Add(row)
				}
				return true
			})
			return out
		}
	}
	for _, t := range db.Tuples(base) {
		if row, ok := v.RowFor(t); ok {
			out.Add(row)
		}
	}
	return out
}

// Lookup returns the current view row whose key matches probe's key
// (probe is a tuple of the view schema); ok is false if no such row.
func (v *SP) Lookup(db storage.Source, probe tuple.T) (tuple.T, bool) {
	base, ok := v.BaseForKey(db, probe)
	if !ok {
		return tuple.T{}, false
	}
	return v.RowFor(base)
}

// BaseForKey returns the base tuple whose key matches probe's key
// (probe is of the view schema — the view and base keys coincide),
// whether or not it satisfies the selection.
func (v *SP) BaseForKey(db storage.Source, probe tuple.T) (tuple.T, bool) {
	return db.LookupKey(keyProbe(v.base, probe))
}

// keyProbe builds a base-schema tuple carrying probe's key values under
// the shared key attribute names; non-key attributes take an arbitrary
// domain value. The result is only used for key-index lookups.
func keyProbe(base *schema.Relation, probe tuple.T) tuple.T {
	attrs := base.Attributes()
	vals := make([]value.Value, len(attrs))
	for i, a := range attrs {
		if base.IsKey(a.Name) {
			vals[i] = probe.MustGet(a.Name)
		} else {
			vals[i] = a.Domain.At(0)
		}
	}
	return tuple.MustNew(base, vals...)
}
