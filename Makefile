# Build, verification and benchmark entry points.
#
# `make check` is the tier-1+ verification gate: it runs everything the
# plain tier-1 gate runs (build + tests) plus vet, formatting and the
# race detector. CI and pre-commit hooks should use it.

GO ?= go

.PHONY: all build test check vet fmt race race-core soak chaos-soak bench bench-obs obs-bench bench-translate bench-ivm bench-shard bench-replica serve-bench bench-wire metrics-smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting (gofmt -l lists offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# race-core runs the translation pipeline's packages under the race
# detector — the overlay, the delta-driven verifier, the parallel
# candidate judging, the IVM layer (reverse reference index, join
# delta maintenance, view-cache patching; see docs/PERFORMANCE.md),
# the sharded store (shard map, router, 2PC recovery) and the
# replication layer (WAL streaming, follower replay, subscriptions).
race-core:
	$(GO) test -race ./internal/core/... ./internal/storage/... ./internal/view/... ./internal/server/... ./internal/shard/... ./internal/replica/...

# soak exercises the durability and fault-injection surface: the
# crash-safety, recovery and churn tests under the race detector, plus
# short smoke runs of the native fuzzers (torn-WAL scanning and the
# snapshot loader).
soak:
	$(GO) test -race -run 'Crash|Recover|Churn|Torn|Fault|Broken' ./internal/wal/ ./internal/persist/ ./internal/workload/ ./internal/storage/ ./internal/server/
	$(GO) test -fuzz FuzzScan -fuzztime 5s -run '^$$' ./internal/wal/
	$(GO) test -fuzz FuzzLoad -fuzztime 5s -run '^$$' ./internal/persist/

# chaos-soak is the crash-contract gate (see docs/ROBUSTNESS.md). Part
# one runs the deterministic in-process kill-point matrix: a live engine
# is crashed (via an armed WAL writer that keeps a seeded byte prefix)
# at every pipeline stage — admission, translate, commit, WAL append,
# fsync, publish — restarted, and checked over the wire: every acked
# commit survived, idempotent retries of ambiguous ops resolve without
# double-applying, and the recovered state is byte-equivalent to a
# fault-free replay. Part two is the same contract end-to-end: vuserved
# is kill -9'd mid-workload and restarted while vuload -chaos retries
# keyed inserts through the outage, then verifies acks and dedup over
# the wire and emits BENCH_chaos.json. Any lost ack, duplicate apply,
# or dedup miss fails the target. The sharded soak adds the two-phase
# window: crashes landing after the prepare records but before the
# decision must roll the in-doubt prepares back, while acked
# cross-shard commits survive on every participant (docs/SHARDING.md).
chaos-soak:
	$(GO) test ./internal/chaos -run 'TestChaosSoak|TestShardedChaosSoak' -count=1
	$(GO) build -o /tmp/vuserved-chaos ./cmd/vuserved
	$(GO) build -o /tmp/vuload-chaos ./cmd/vuload
	@rm -rf /tmp/vuserved-chaos-data; \
	printf '%s\n' \
	  "CREATE DOMAIN KeyDom AS INT RANGE 1 TO 100000;" \
	  "CREATE DOMAIN LocDom AS STRING ('New York', 'San Francisco', 'Austin');" \
	  "CREATE TABLE EMP (EmpNo KeyDom, Location LocDom, PRIMARY KEY (EmpNo));" \
	  "CREATE VIEW NY AS SELECT * FROM EMP WHERE Location = 'New York';" \
	  > /tmp/vuserved-chaos-init.sql; \
	/tmp/vuserved-chaos -addr 127.0.0.1:18097 -data /tmp/vuserved-chaos-data \
		-init /tmp/vuserved-chaos-init.sql -log-level warn & \
	SRV=$$!; sleep 1; \
	/tmp/vuload-chaos -addr http://127.0.0.1:18097 -chaos -clients 4 -requests 1000 \
		-seed 7 -out BENCH_chaos.json & \
	LOAD=$$!; sleep 0.3; \
	kill -9 $$SRV 2>/dev/null; wait $$SRV 2>/dev/null; \
	/tmp/vuserved-chaos -addr 127.0.0.1:18097 -data /tmp/vuserved-chaos-data \
		-init /tmp/vuserved-chaos-init.sql -log-level warn & \
	SRV=$$!; \
	wait $$LOAD; RC=$$?; \
	kill -TERM $$SRV 2>/dev/null; wait $$SRV 2>/dev/null; \
	rm -rf /tmp/vuserved-chaos-data /tmp/vuserved-chaos /tmp/vuload-chaos /tmp/vuserved-chaos-init.sql; \
	cat BENCH_chaos.json; \
	exit $$RC

# The tier-1+ check: build, vet, formatting, the full test suite under
# the race detector (which subsumes the plain `go test ./...`), and the
# durability soak.
check: build vet fmt race soak

bench:
	$(GO) test -bench . -run '^$$' .

# bench-obs emits BENCH_obs.json: candidates/sec, translate latency
# p50/p99/p999, the per-criterion rejection histogram, and the hot-path
# contract evidence — disabled-path cost (~a nil check) and
# allocation-free enabled-path Observe (see docs/OBSERVABILITY.md).
bench-obs:
	$(GO) test -bench 'BenchmarkObs' -run '^$$' -benchtime 10x .
	@cat BENCH_obs.json

# obs-bench is an alias for bench-obs.
obs-bench: bench-obs

# bench-translate emits BENCH_translate.json: the overlay-based
# pipeline against the clone-per-candidate baseline it replaced —
# candidates/sec, translate latency p50/p99, allocs/op and the
# overlay/clone speedups (see docs/PERFORMANCE.md).
bench-translate:
	$(GO) test -bench 'BenchmarkTranslate' -run '^$$' -benchtime 20x .
	@cat BENCH_translate.json

# bench-ivm emits BENCH_ivm.json: incremental view maintenance against
# its full-rebuild baselines — a non-root SPJ mutation stream where the
# materialization is kept current by delta patching vs rematerialized
# per commit, and read-heavy serve churn through the engine's view
# cache with delta patching on publish vs invalidate-on-publish
# (see docs/PERFORMANCE.md).
bench-ivm:
	$(GO) test -bench 'BenchmarkIVM' -run '^$$' -benchtime 40x .
	@cat BENCH_ivm.json

# bench-shard emits BENCH_shard.json: aggregate durable commit
# throughput of the root-key sharded pipeline at 1/2/4/8 shards over
# modeled datacenter block storage (every WAL barrier padded to 2ms,
# MaxBatch=1 — the measured production regime, commits_per_sync ≈ 1;
# see the bench file's header), with a 25% cross-shard (two-phase)
# fraction. CI asserts speedup_8x_commits_per_sec ≥ 3
# (see docs/SHARDING.md).
bench-shard:
	$(GO) test -bench 'BenchmarkShardScale' -run '^$$' -benchtime 2000x -timeout 900s .
	@cat BENCH_shard.json

# bench-replica emits BENCH_replica.json: aggregate view-read
# throughput of a durable primary alone vs the same primary fronted by
# four WAL-streaming followers, every node behind an identical modeled
# per-node capacity gate (see the bench file's header), with live
# writes flowing and two /subscribe streams per follower. Alongside the
# read speedup it reports the follower staleness quantiles
# (publish→apply lag, ms), subscription fan-out events/sec, and the
# steady-state view-cache rebuild delta (O(delta) maintenance keeps it
# ≈ 0). CI asserts speedup_4f_reads_per_sec ≥ 3 and staleness_p99_ms
# ≤ 250 (see docs/REPLICATION.md).
bench-replica:
	$(GO) test -bench 'BenchmarkReplicaScale' -run '^$$' -benchtime 4000x -timeout 600s .
	@cat BENCH_replica.json

# serve-bench boots vuserved on a scratch store and drives it with
# vuload in two phases, each against a fresh store. Phase 1 (idle): one
# client, no queueing — the latency floor; a solo commit never waits
# for the batch window, so this pins the unloaded p50 the adaptive
# batcher must not regress. Phase 2 (loaded): 8 clients with a 1ms
# batch window — emits BENCH_server.json with throughput, latency
# quantiles, per-stage breakdowns, connection reuse, and the
# group-commit evidence, and fails unless batch-size p99 and
# commits/fsync both reach 4 (see docs/SERVING.md and
# docs/PERFORMANCE.md).
serve-bench:
	$(GO) build -o /tmp/vuserved-bench ./cmd/vuserved
	$(GO) build -o /tmp/vuload-bench ./cmd/vuload
	@rm -rf /tmp/vuserved-bench-data; \
	/tmp/vuserved-bench -addr 127.0.0.1:18099 -data /tmp/vuserved-bench-data -log-level warn & \
	SRV=$$!; sleep 1; \
	/tmp/vuload-bench -addr http://127.0.0.1:18099 -clients 1 -requests 200 \
		-out BENCH_server_idle.json; RC=$$?; \
	kill -TERM $$SRV 2>/dev/null; wait $$SRV 2>/dev/null; \
	rm -rf /tmp/vuserved-bench-data; \
	if [ $$RC -eq 0 ]; then \
		/tmp/vuserved-bench -addr 127.0.0.1:18099 -data /tmp/vuserved-bench-data \
			-log-level warn -batch-delay 1ms & \
		SRV=$$!; sleep 1; \
		/tmp/vuload-bench -addr http://127.0.0.1:18099 -clients 8 -requests 200 \
			-out BENCH_server.json -assert-batching \
			-min-batch-p99 4 -min-commits-per-sync 4; RC=$$?; \
		kill -TERM $$SRV 2>/dev/null; wait $$SRV 2>/dev/null; \
	fi; \
	rm -rf /tmp/vuserved-bench-data /tmp/vuserved-bench /tmp/vuload-bench; \
	exit $$RC
	@cat BENCH_server.json

# bench-wire runs the pooled wire-codec microbenchmarks — decode,
# encode, and full round trip with allocation counts. The allocs/op
# ceilings themselves are pinned by the codec regression tests in
# internal/server (skipped under -race, whose instrumentation inflates
# allocation counts).
bench-wire:
	$(GO) test -bench 'BenchmarkWire' -run '^$$' -benchtime 2000x ./internal/server/

# metrics-smoke boots an in-memory vuserved, exercises one update, and
# fails unless /metrics serves every required family, /debug/slow serves
# traces, and pprof is absent without its flag. This is the CI gate for
# the observability surface.
metrics-smoke:
	$(GO) build -o /tmp/vuserved-smoke ./cmd/vuserved
	@/tmp/vuserved-smoke -addr 127.0.0.1:18098 -log-level warn & \
	SRV=$$!; sleep 1; RC=0; \
	B=http://127.0.0.1:18098; \
	curl -sf -X POST $$B/execz -d '{"script":"CREATE DOMAIN D AS INT RANGE 1 TO 9; CREATE DOMAIN L AS STRING ('\''NY'\''); CREATE TABLE T (K D, Loc L, PRIMARY KEY (K)); CREATE VIEW V AS SELECT * FROM T WHERE Loc = '\''NY'\'';"}' >/dev/null || RC=1; \
	curl -sf -X POST $$B/views/V/insert -d '{"values":["1","NY"]}' >/dev/null || RC=1; \
	M=$$(curl -sf $$B/metrics) || RC=1; \
	for fam in server_requests server_commit_committed server_commit_batch_size \
	    server_stage_translate_ns server_stage_verify_ns server_stage_queue_ns \
	    server_stage_commit_ns server_stage_publish_ns \
	    server_commit_queue_depth server_http_inflight go_goroutines \
	    server_degraded server_breaker_state server_idem_entries; do \
	  echo "$$M" | grep -q "# TYPE $$fam " || { echo "metrics-smoke: /metrics missing $$fam"; RC=1; }; \
	done; \
	curl -sf $$B/healthz | grep -q '"status": "ok"' || { echo "metrics-smoke: /healthz not ok"; RC=1; }; \
	curl -sf $$B/readyz | grep -q '"ready": true' || { echo "metrics-smoke: /readyz not ready"; RC=1; }; \
	curl -sf $$B/debug/slow | grep -q '"total_ns"' || { echo "metrics-smoke: /debug/slow has no traces"; RC=1; }; \
	PP=$$(curl -s -o /dev/null -w '%{http_code}' $$B/debug/pprof/cmdline); \
	[ "$$PP" = "404" ] || { echo "metrics-smoke: pprof served without -pprof (status $$PP)"; RC=1; }; \
	kill -TERM $$SRV 2>/dev/null; wait $$SRV 2>/dev/null; \
	rm -f /tmp/vuserved-smoke; \
	[ $$RC -eq 0 ] && echo "metrics-smoke: ok"; exit $$RC

clean:
	rm -f BENCH_obs.json BENCH_server.json BENCH_translate.json BENCH_ivm.json BENCH_chaos.json BENCH_shard.json BENCH_replica.json
