# Build, verification and benchmark entry points.
#
# `make check` is the tier-1+ verification gate: it runs everything the
# plain tier-1 gate runs (build + tests) plus vet, formatting and the
# race detector. CI and pre-commit hooks should use it.

GO ?= go

.PHONY: all build test check vet fmt race bench bench-obs clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting (gofmt -l lists offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# The tier-1+ check: build, vet, formatting, and the full test suite
# under the race detector (which subsumes the plain `go test ./...`).
check: build vet fmt race

bench:
	$(GO) test -bench . -run '^$$' .

# bench-obs emits BENCH_obs.json: candidates/sec, translate latency
# p50/p99 and the per-criterion rejection histogram (see
# docs/OBSERVABILITY.md).
bench-obs:
	$(GO) test -bench 'BenchmarkObs' -run '^$$' -benchtime 10x .
	@cat BENCH_obs.json

clean:
	rm -f BENCH_obs.json
