// Package viewupdate is a reproduction of Arthur M. Keller's PODS 1985
// paper "Algorithms for Translating View Updates to Database Updates
// for Views Involving Selections, Projections, and Joins".
//
// It implements the paper's complete machinery — a relational storage
// engine with key and inclusion dependencies, select-project (SP) and
// select-project-join (SPJ) views in SPJNF over reference-connection
// trees, the five criteria for acceptable view-update translations, the
// complete translation enumerators (algorithm classes I-1/I-2, D-1/D-2,
// R-1…R-5, SPJ-D/I/R), and policies encoding the DBA's "additional
// semantics" that choose one translation among the candidates.
//
// This package is the public façade: it re-exports the library's main
// types so applications can work with a single import. The
// implementation lives under internal/ (see DESIGN.md for the map).
//
// A minimal session:
//
//	dom, _ := viewupdate.StringDomain("LocDom", "NY", "SF")
//	... build a schema.Relation, a Selection, an SP view ...
//	db := viewupdate.Open(sch)
//	tr := viewupdate.NewTranslator(v, viewupdate.PreferClasses{Order: []string{"D-1"}})
//	cand, err := tr.Apply(db, viewupdate.DeleteRequest(row))
//
// See examples/ for complete programs.
package viewupdate

import (
	"viewupdate/internal/algebra"
	"viewupdate/internal/core"
	"viewupdate/internal/persist"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

// Value and domain construction.
type (
	// Value is a typed scalar stored in relations.
	Value = value.Value
	// Domain is a finite set of values an attribute draws from.
	Domain = schema.Domain
	// Attribute is a named column over a domain.
	Attribute = schema.Attribute
	// Relation is a relation schema with a single key dependency.
	Relation = schema.Relation
	// Schema is a database schema: relations plus inclusion
	// dependencies.
	Schema = schema.Database
	// InclusionDependency states child[attrs] ⊆ parent[key].
	InclusionDependency = schema.InclusionDependency
	// Tuple is an immutable tuple over a relation schema.
	Tuple = tuple.T
	// Database is a storage instance holding relation extensions.
	Database = storage.Database
	// Selection is a conjunction of "attribute ∈ set" terms.
	Selection = algebra.Selection
	// SPView is a select-project view over one relation.
	SPView = view.SP
	// JoinView is a select-project-join view over a reference tree.
	JoinView = view.Join
	// JoinNode is a node of a join view's query graph.
	JoinNode = view.Node
	// JoinRef is a reference connection from a node to a target node.
	JoinRef = view.Ref
	// View is any materializable view (SPView or JoinView).
	View = view.View
	// Translation is a set of database update operations.
	Translation = update.Translation
	// Op is one database update operation.
	Op = update.Op
	// Request is a single-tuple view update request.
	Request = core.Request
	// Candidate is one translation labelled with its algorithm class.
	Candidate = core.Candidate
	// Translator binds a view to a policy.
	Translator = core.Translator
	// Policy selects among candidate translations (the paper's
	// "additional semantics").
	Policy = core.Policy
	// PreferClasses ranks candidates by algorithm class.
	PreferClasses = core.PreferClasses
	// PickFirst picks deterministically.
	PickFirst = core.PickFirst
	// RejectAmbiguous requires a unique candidate.
	RejectAmbiguous = core.RejectAmbiguous
	// WithDefaults refines a policy with default attribute values.
	WithDefaults = core.WithDefaults
	// Violation reports a broken criterion.
	Violation = core.Violation
	// CheckOptions parameterizes criteria checking.
	CheckOptions = core.CheckOptions
	// Effects reports a translation's view side effects.
	Effects = core.Effects
	// BatchItem is one view update inside a multi-view batch.
	BatchItem = core.BatchItem
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = value.NewInt
	// Str builds a string value.
	Str = value.NewString
	// Bool builds a boolean value.
	Bool = value.NewBool
)

// Domain constructors.
var (
	// NewDomain builds a finite domain from explicit values.
	NewDomain = schema.NewDomain
	// IntRangeDomain builds the domain of the integers [lo, hi].
	IntRangeDomain = schema.IntRangeDomain
	// StringDomain builds a domain of strings.
	StringDomain = schema.StringDomain
	// BoolDomain builds the two-valued boolean domain.
	BoolDomain = schema.BoolDomain
)

// Schema constructors.
var (
	// NewRelation builds a relation schema with a key.
	NewRelation = schema.NewRelation
	// NewSchema returns an empty database schema.
	NewSchema = schema.NewDatabase
	// Open returns an empty database instance for a schema.
	Open = storage.Open
	// NewTuple builds a validated tuple.
	NewTuple = tuple.New
	// NewSelection returns the selection "true" over a relation.
	NewSelection = algebra.NewSelection
)

// View constructors.
var (
	// NewSPView builds a select-project view.
	NewSPView = view.NewSP
	// IdentityView builds the identity view of a relation.
	IdentityView = view.Identity
	// NewJoinView builds and validates a join view over a reference
	// tree.
	NewJoinView = view.NewJoin
	// NewJoinViewDAG builds a join view over a rooted DAG (the §5-1
	// footnote extension): target nodes may be shared between
	// references; rows exist only where the reference paths converge.
	NewJoinViewDAG = view.NewJoinDAG
)

// Update construction.
var (
	// NewTranslation builds a translation from operations.
	NewTranslation = update.NewTranslation
	// NewInsertOp builds a database insertion operation.
	NewInsertOp = update.NewInsert
	// NewDeleteOp builds a database deletion operation.
	NewDeleteOp = update.NewDelete
	// NewReplaceOp builds a database replacement operation.
	NewReplaceOp = update.NewReplace
)

// Request constructors.
var (
	// InsertRequest asks that a tuple appear in the view.
	InsertRequest = core.InsertRequest
	// DeleteRequest asks that a tuple disappear from the view.
	DeleteRequest = core.DeleteRequest
	// ReplaceRequest asks that one view tuple replace another.
	ReplaceRequest = core.ReplaceRequest
)

// Translation machinery.
var (
	// NewTranslator binds a view to a policy.
	NewTranslator = core.NewTranslator
	// Enumerate returns every candidate translation of a request.
	Enumerate = core.Enumerate
	// ValidateRequest checks a request's applicability conditions.
	ValidateRequest = core.ValidateRequest
	// Valid reports exact (no-view-side-effect) validity.
	Valid = core.Valid
	// ValidRequested reports relaxed validity for join views.
	ValidRequested = core.ValidRequested
	// CheckCriteria evaluates the paper's five criteria.
	CheckCriteria = core.CheckCriteria
	// SideEffects reports a translation's view changes beyond the
	// request (join views may have them; SP views never do).
	SideEffects = core.SideEffects
	// TranslateBatch translates updates on disjoint-relation views into
	// one union translation (the §5-3 composition lemma).
	TranslateBatch = core.TranslateBatch
	// ApplyBatch translates and applies a batch atomically.
	ApplyBatch = core.ApplyBatch
	// MakeRow builds a tuple of a relation from raw Go values.
	MakeRow = core.MakeRow
)

// Persistence: deterministic JSON snapshots of schema and contents.
var (
	// SaveSnapshot writes a database snapshot to a file.
	SaveSnapshot = persist.SaveFile
	// LoadSnapshot restores a database from a snapshot file.
	LoadSnapshot = persist.LoadFile
)
