package viewupdate

// One benchmark per experiment of DESIGN.md §3 (E1..E15). Each bench
// regenerates the measured portion of its experiment; the experiment
// harness (cmd/experiments) prints the corresponding tables.

import (
	"fmt"
	"testing"

	"viewupdate/internal/algebra"
	"viewupdate/internal/bruteforce"
	"viewupdate/internal/core"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/workload"
)

// BenchmarkE1Commutativity measures translate-apply-verify round trips
// (the §1 diagram) on SP views across database sizes.
func BenchmarkE1Commutativity(b *testing.B) {
	for _, size := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("db=%d", size), func(b *testing.B) {
			w := workload.MustNewSP(workload.SPConfig{
				Keys: int64(size * 2), Attrs: 4, DomainSize: 6,
				SelectingAttrs: 2, HiddenAttrs: 2, Tuples: size, Seed: 42,
			})
			r, ok := w.NextRequest(update.Delete)
			if !ok {
				b.Fatal("no request")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cands, err := core.Enumerate(w.DB, w.View, r)
				if err != nil {
					b.Fatal(err)
				}
				chosen, err := (core.PickFirst{}).Choose(r, cands)
				if err != nil {
					b.Fatal(err)
				}
				if !core.Valid(w.DB, w.View, r, chosen.Translation) {
					b.Fatal("not exactly valid")
				}
			}
		})
	}
}

// BenchmarkE2PersonnelExample measures the §4-1 worked example: both
// policy-driven deletions on a fresh instance per iteration.
func BenchmarkE2PersonnelExample(b *testing.B) {
	f := fixtures.NewEmp(20)
	susan := core.NewTranslator(f.ViewP, core.PreferClasses{Order: []string{"D-1"}})
	frank := core.NewTranslator(f.ViewB, core.PreferClasses{Order: []string{"D-2"}})
	base := f.PaperInstance()
	emp17 := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	emp14 := f.ViewTuple(f.ViewB, 14, "Frank", "San Francisco", true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := base.Clone()
		if _, err := susan.Apply(db, core.DeleteRequest(emp17)); err != nil {
			b.Fatal(err)
		}
		if _, err := frank.Apply(db, core.DeleteRequest(emp14)); err != nil {
			b.Fatal(err)
		}
	}
}

// e3DB rebuilds the §4-5 chart fixture.
func e3DB(b *testing.B) (*core.Translator, *storage.Database, tuple.T, tuple.T, tuple.T) {
	b.Helper()
	kDom, _ := schema.IntRangeDomain("K", 1, 3)
	bDom, _ := schema.StringDomain("B", "b1", "b2")
	sDom, _ := schema.StringDomain("S", "s1", "s2", "s3")
	rel := schema.MustRelation("R", []schema.Attribute{
		{Name: "K", Domain: kDom}, {Name: "B", Domain: bDom}, {Name: "S", Domain: sDom},
	}, []string{"K"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(rel); err != nil {
		b.Fatal(err)
	}
	sel := algebra.NewSelection(rel).MustAddTerm("S", value.NewString("s1"), value.NewString("s2"))
	v, err := NewSPView("V", sel, []string{"K", "B"})
	if err != nil {
		b.Fatal(err)
	}
	db := Open(sch)
	if err := db.Load("R",
		tuple.MustNew(rel, value.NewInt(1), value.NewString("b1"), value.NewString("s1")),
		tuple.MustNew(rel, value.NewInt(2), value.NewString("b2"), value.NewString("s3")),
	); err != nil {
		b.Fatal(err)
	}
	vt := func(k int64, s string) tuple.T {
		return tuple.MustNew(v.Schema(), value.NewInt(k), value.NewString(s))
	}
	return core.NewTranslator(v, nil), db, vt(1, "b1"), vt(3, "b1"), vt(2, "b1")
}

// BenchmarkE3ReplacementChart measures replacement enumeration in the
// chart's three conditions.
func BenchmarkE3ReplacementChart(b *testing.B) {
	tr, db, old, freshKey, hiddenKey := e3DB(b)
	sp := tr.View.(*SPView)
	cases := []struct {
		name     string
		old, new tuple.T
	}{
		{"same-key", old, old.MustWith("B", value.NewString("b2"))},
		{"key-fresh", old, freshKey},
		{"key-hidden", old, hiddenKey},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.EnumerateSPReplace(db, sp, c.old, c.new); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4ReferenceConnection measures materialization and SPJ
// translation on the §5-1 figure.
func BenchmarkE4ReferenceConnection(b *testing.B) {
	f := fixtures.NewABCXD()
	db := f.PaperInstance()
	row := f.ViewTuple("c1", "a", 3, 1)
	b.Run("materialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.View.Materialize(db)
		}
	})
	b.Run("spj-delete", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.EnumerateJoinDelete(db, f.View, row); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("spj-insert", func(b *testing.B) {
		u := f.ViewTuple("c3", "a1", 5, 7)
		for i := 0; i < b.N; i++ {
			if _, err := core.EnumerateJoinInsert(db, f.View, u); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// oracleBenchInstance builds the tiny completeness instance.
func oracleBenchInstance(b *testing.B) (*SPView, *storage.Database, tuple.T) {
	b.Helper()
	kDom, _ := schema.IntRangeDomain("K", 1, 3)
	aDom, _ := schema.StringDomain("A", "x", "y")
	sDom, _ := schema.StringDomain("S", "s1", "s2", "s3")
	hDom, _ := schema.StringDomain("H", "h1", "h2")
	rel := schema.MustRelation("R", []schema.Attribute{
		{Name: "K", Domain: kDom}, {Name: "A", Domain: aDom},
		{Name: "S", Domain: sDom}, {Name: "H", Domain: hDom},
	}, []string{"K"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(rel); err != nil {
		b.Fatal(err)
	}
	sel := algebra.NewSelection(rel).
		MustAddTerm("A", value.NewString("x")).
		MustAddTerm("S", value.NewString("s1"), value.NewString("s2"))
	v, err := NewSPView("V", sel, []string{"K", "A"})
	if err != nil {
		b.Fatal(err)
	}
	db := Open(sch)
	if err := db.Load("R",
		tuple.MustNew(rel, value.NewInt(1), value.NewString("x"), value.NewString("s1"), value.NewString("h1")),
		tuple.MustNew(rel, value.NewInt(2), value.NewString("y"), value.NewString("s3"), value.NewString("h2")),
	); err != nil {
		b.Fatal(err)
	}
	u := tuple.MustNew(v.Schema(), value.NewInt(3), value.NewString("x"))
	return v, db, u
}

// benchOracleVsGenerator runs both sides of a completeness experiment.
func benchOracleVsGenerator(b *testing.B, mk func(v *SPView, u tuple.T) core.Request) {
	v, db, u := oracleBenchInstance(b)
	r := mk(v, u)
	b.Run("generator", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Enumerate(db, v, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bruteforce.Search(db, v, r, bruteforce.Config{MaxOps: 2, Exact: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE5InsertCompleteness measures generator vs oracle for the
// insertion theorem.
func BenchmarkE5InsertCompleteness(b *testing.B) {
	benchOracleVsGenerator(b, func(v *SPView, u tuple.T) core.Request {
		return core.InsertRequest(u)
	})
}

// BenchmarkE6DeleteCompleteness measures generator vs oracle for the
// deletion theorem.
func BenchmarkE6DeleteCompleteness(b *testing.B) {
	benchOracleVsGenerator(b, func(v *SPView, u tuple.T) core.Request {
		return core.DeleteRequest(tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("x")))
	})
}

// BenchmarkE7ReplaceCompleteness measures generator vs oracle for the
// replacement theorem.
func BenchmarkE7ReplaceCompleteness(b *testing.B) {
	benchOracleVsGenerator(b, func(v *SPView, u tuple.T) core.Request {
		return core.ReplaceRequest(
			tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("x")), u)
	})
}

// BenchmarkE8CriteriaIndependence measures the five-criteria check on a
// two-op translation.
func BenchmarkE8CriteriaIndependence(b *testing.B) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	old := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	new := f.ViewTuple(f.ViewP, 11, "Susan", "New York", true)
	r := core.ReplaceRequest(old, new)
	cands, err := core.Enumerate(db, f.ViewP, r)
	if err != nil {
		b.Fatal(err)
	}
	var biggest *Translation
	for _, c := range cands {
		if biggest == nil || c.Translation.Len() > biggest.Len() {
			biggest = c.Translation
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if viols := core.CheckCriteria(db, f.ViewP, r, biggest, core.CheckOptions{}); len(viols) != 0 {
			b.Fatalf("unexpected violations: %v", viols)
		}
	}
}

// BenchmarkE9SPJUniqueness measures join-view translation across tree
// depths.
func BenchmarkE9SPJUniqueness(b *testing.B) {
	for _, depth := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			w := workload.MustNewTree(workload.TreeConfig{
				Depth: depth, Fanout: 1, Keys: 100, TuplesPerRelation: 20, Seed: 13,
			})
			r, ok := w.InsertRequestForFreshRoot()
			if !ok {
				b.Fatal("no request")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cands, err := core.Enumerate(w.DB, w.View, r)
				if err != nil {
					b.Fatal(err)
				}
				if len(cands) != 1 {
					b.Fatalf("want unique candidate, got %d", len(cands))
				}
			}
		})
	}
}

// BenchmarkE10SPJNF measures normalization plus evaluation of the
// figure's join expression.
func BenchmarkE10SPJNF(b *testing.B) {
	f := fixtures.NewABCXD()
	db := f.PaperInstance()
	expr := algebra.Select{
		Input: algebra.Join{
			Left: algebra.Rel{Name: "CXD"}, Right: algebra.Rel{Name: "AB"},
			LeftAttrs: []string{"X"}, RightAttrs: []string{"A"},
		},
		Attr: "B", Vals: []value.Value{value.NewInt(1)},
	}
	b.Run("normalize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algebra.Normalize(expr, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eval-normalized", func(b *testing.B) {
		n, err := algebra.Normalize(expr, db)
		if err != nil {
			b.Fatal(err)
		}
		e := n.Expr()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Eval(db); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11Composition measures union-apply of two disjoint-view
// translations.
func BenchmarkE11Composition(b *testing.B) {
	f := fixtures.NewABCXD()
	base := Open(f.Schema)
	if err := base.LoadAll(f.ABTuple("a", 1), f.ABTuple("a2", 2), f.CXDTuple("c1", "a", 3)); err != nil {
		b.Fatal(err)
	}
	v1 := IdentityView("V1", f.CXD)
	v2 := IdentityView("V2", f.AB)
	u1 := tuple.MustNew(v1.Schema(), value.NewString("c1"), value.NewString("a"), value.NewInt(3))
	old2 := tuple.MustNew(v2.Schema(), value.NewString("a2"), value.NewInt(2))
	new2 := tuple.MustNew(v2.Schema(), value.NewString("a2"), value.NewInt(1))
	c1s, err := core.EnumerateSP(base, v1, core.DeleteRequest(u1))
	if err != nil {
		b.Fatal(err)
	}
	c2s, err := core.EnumerateSP(base, v2, core.ReplaceRequest(old2, new2))
	if err != nil {
		b.Fatal(err)
	}
	union := c1s[0].Translation.Clone()
	union.AddAll(c2s[0].Translation)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := base.Clone()
		if err := db.Apply(union); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12Scaling measures insert translation across database
// sizes (flat) and hidden-attribute choice spaces (multiplicative).
func BenchmarkE12Scaling(b *testing.B) {
	for _, size := range []int{100, 1000, 10000, 100000} {
		b.Run(fmt.Sprintf("db=%d", size), func(b *testing.B) {
			w := workload.MustNewSP(workload.SPConfig{
				Keys: int64(size * 2), Attrs: 3, DomainSize: 4,
				SelectingAttrs: 1, HiddenAttrs: 1, Tuples: size, Seed: 5,
			})
			r, ok := w.NextRequest(update.Insert)
			if !ok {
				b.Fatal("no request")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Enumerate(w.DB, w.View, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, hidden := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("hidden=%d", hidden), func(b *testing.B) {
			w := workload.MustNewSP(workload.SPConfig{
				Keys: 2000, Attrs: 4, DomainSize: 4,
				SelectingAttrs: 0, HiddenAttrs: hidden, Tuples: 500, Seed: 6,
			})
			r, ok := w.NextRequest(update.Insert)
			if !ok {
				b.Fatal("no request")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Enumerate(w.DB, w.View, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE14Simplification measures the simplification-theorem
// check: exhaustive valid-set search plus dominance testing under the
// combined order.
func BenchmarkE14Simplification(b *testing.B) {
	v, db, u := oracleBenchInstance(b)
	r := core.InsertRequest(u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bruteforce.CheckSimplification(db, v, r, bruteforce.Config{MaxOps: 2, Exact: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.ChainFailures != 0 {
			b.Fatal("simplification theorem failed")
		}
	}
}

// BenchmarkE13EnumVsBrute contrasts generator and oracle costs as the
// domain grows.
func BenchmarkE13EnumVsBrute(b *testing.B) {
	v, db, u := oracleBenchInstance(b)
	r := core.InsertRequest(u)
	b.Run("generator", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Enumerate(db, v, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, maxOps := range []int{1, 2} {
		b.Run(fmt.Sprintf("oracle-ops=%d", maxOps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bruteforce.Search(db, v, r, bruteforce.Config{MaxOps: maxOps, Exact: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE15DAG measures materialization and SPJ translation over
// the diamond DAG of the §5-1 footnote extension.
func BenchmarkE15DAG(b *testing.B) {
	d := fixtures.NewDiamond()
	db := d.ConvergentInstance()
	b.Run("materialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.View.Materialize(db)
		}
	})
	b.Run("spj-insert", func(b *testing.B) {
		u := d.ViewTuple(3, 7, 8, 9, 2)
		for i := 0; i < b.N; i++ {
			if _, err := core.EnumerateJoinInsert(db, d.View, u); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("spj-replace", func(b *testing.B) {
		old := d.ViewTuple(1, 1, 2, 5, 0)
		new := d.ViewTuple(1, 1, 2, 5, 3)
		for i := 0; i < b.N; i++ {
			if _, err := core.EnumerateJoinReplace(db, d.View, old, new); err != nil {
				b.Fatal(err)
			}
		}
	})
}
