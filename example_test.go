package viewupdate_test

import (
	"fmt"
	"log"

	"viewupdate"
)

// buildPersonnel assembles the README's EMP schema.
func buildPersonnel() (*viewupdate.Schema, *viewupdate.Relation) {
	empNo, err := viewupdate.IntRangeDomain("EmpNoDom", 1, 100)
	if err != nil {
		log.Fatal(err)
	}
	names, err := viewupdate.StringDomain("NameDom", "Ada", "Ben", "Cy")
	if err != nil {
		log.Fatal(err)
	}
	locs, err := viewupdate.StringDomain("LocDom", "New York", "San Francisco")
	if err != nil {
		log.Fatal(err)
	}
	emp, err := viewupdate.NewRelation("EMP", []viewupdate.Attribute{
		{Name: "EmpNo", Domain: empNo},
		{Name: "Name", Domain: names},
		{Name: "Location", Domain: locs},
	}, []string{"EmpNo"})
	if err != nil {
		log.Fatal(err)
	}
	sch := viewupdate.NewSchema()
	if err := sch.AddRelation(emp); err != nil {
		log.Fatal(err)
	}
	return sch, emp
}

// ExampleTranslator_Apply translates a view deletion under a policy
// preferring real deletion (the paper's Susan).
func ExampleTranslator_Apply() {
	sch, emp := buildPersonnel()
	sel := viewupdate.NewSelection(emp)
	if err := sel.AddTerm("Location", viewupdate.Str("New York")); err != nil {
		log.Fatal(err)
	}
	ny, err := viewupdate.NewSPView("NY", sel, []string{"EmpNo", "Name", "Location"})
	if err != nil {
		log.Fatal(err)
	}
	db := viewupdate.Open(sch)
	row, _ := viewupdate.MakeRow(emp, 1, "Ada", "New York")
	if err := db.Load("EMP", row); err != nil {
		log.Fatal(err)
	}

	tr := viewupdate.NewTranslator(ny, viewupdate.PreferClasses{Order: []string{"D-1"}})
	victim, _ := viewupdate.MakeRow(ny.Schema(), 1, "Ada", "New York")
	cand, err := tr.Apply(db, viewupdate.DeleteRequest(victim))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cand.Class, cand.Translation)
	// Output: D-1 {DELETE EMP(1, 'Ada', 'New York')}
}

// ExampleEnumerate lists the complete candidate set for a deletion:
// D-1 (destroy) and one D-2 per excluding value (flip out of the view).
func ExampleEnumerate() {
	sch, emp := buildPersonnel()
	sel := viewupdate.NewSelection(emp)
	if err := sel.AddTerm("Location", viewupdate.Str("New York")); err != nil {
		log.Fatal(err)
	}
	ny, err := viewupdate.NewSPView("NY", sel, []string{"EmpNo", "Name", "Location"})
	if err != nil {
		log.Fatal(err)
	}
	db := viewupdate.Open(sch)
	row, _ := viewupdate.MakeRow(emp, 1, "Ada", "New York")
	if err := db.Load("EMP", row); err != nil {
		log.Fatal(err)
	}

	victim, _ := viewupdate.MakeRow(ny.Schema(), 1, "Ada", "New York")
	cands, err := viewupdate.Enumerate(db, ny, viewupdate.DeleteRequest(victim))
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cands {
		fmt.Println(c.Class, c.Translation)
	}
	// Output:
	// D-1 {DELETE EMP(1, 'Ada', 'New York')}
	// D-2 {REPLACE EMP(1, 'Ada', 'New York') -> EMP(1, 'Ada', 'San Francisco')}
}

// ExampleCheckCriteria shows the five criteria rejecting a gratuitous
// two-step translation (criterion 5: no delete-insert pairs).
func ExampleCheckCriteria() {
	sch, emp := buildPersonnel()
	v := viewupdate.IdentityView("All", emp)
	db := viewupdate.Open(sch)
	row, _ := viewupdate.MakeRow(emp, 1, "Ada", "New York")
	if err := db.Load("EMP", row); err != nil {
		log.Fatal(err)
	}
	old, _ := viewupdate.MakeRow(v.Schema(), 1, "Ada", "New York")
	new, _ := viewupdate.MakeRow(v.Schema(), 2, "Ada", "New York")
	r := viewupdate.ReplaceRequest(old, new)

	// Hand-build the delete+insert pair the criteria forbid.
	moved, _ := viewupdate.MakeRow(emp, 2, "Ada", "New York")
	var tr viewupdate.Translation
	tr.Add(viewupdate.NewDeleteOp(row))
	tr.Add(viewupdate.NewInsertOp(moved))

	for _, viol := range viewupdate.CheckCriteria(db, v, r, &tr, viewupdate.CheckOptions{}) {
		fmt.Println(viol.Error())
	}
	// Output: criterion 5 violated: relation EMP has both deletions and insertions (convertible to a replacement)
}
