// Quickstart: define a relation, a select-project view, and translate
// view updates into database updates.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log/slog"
	"os"

	"viewupdate"
	"viewupdate/internal/obs"
)

func main() {
	slog.SetDefault(obs.NewLogger(os.Stderr, slog.LevelInfo))
	// A finite-domain relation EMP(EmpNo*, Name, Location), as in the
	// paper's model: every attribute draws from a finite domain and the
	// only constraint is the key dependency EmpNo -> everything.
	empNo, err := viewupdate.IntRangeDomain("EmpNoDom", 1, 100)
	if err != nil {
		fatal(err)
	}
	names, err := viewupdate.StringDomain("NameDom", "Ada", "Ben", "Cy", "Dee")
	if err != nil {
		fatal(err)
	}
	locs, err := viewupdate.StringDomain("LocDom", "New York", "San Francisco")
	if err != nil {
		fatal(err)
	}
	emp, err := viewupdate.NewRelation("EMP", []viewupdate.Attribute{
		{Name: "EmpNo", Domain: empNo},
		{Name: "Name", Domain: names},
		{Name: "Location", Domain: locs},
	}, []string{"EmpNo"})
	if err != nil {
		fatal(err)
	}
	sch := viewupdate.NewSchema()
	if err := sch.AddRelation(emp); err != nil {
		fatal(err)
	}

	// The view: SELECT * FROM EMP WHERE Location = 'New York'.
	sel := viewupdate.NewSelection(emp)
	if err := sel.AddTerm("Location", viewupdate.Str("New York")); err != nil {
		fatal(err)
	}
	ny, err := viewupdate.NewSPView("NewYorkers", sel, []string{"EmpNo", "Name", "Location"})
	if err != nil {
		fatal(err)
	}

	// A database instance.
	db := viewupdate.Open(sch)
	mustLoad := func(no int64, name, loc string) {
		t, err := viewupdate.MakeRow(emp, no, name, loc)
		if err != nil {
			fatal(err)
		}
		if err := db.Load("EMP", t); err != nil {
			fatal(err)
		}
	}
	mustLoad(1, "Ada", "New York")
	mustLoad(2, "Ben", "San Francisco")
	mustLoad(3, "Cy", "New York")

	fmt.Println("view before:")
	for _, row := range ny.Materialize(db).Slice() {
		fmt.Println("  ", row)
	}

	// Insert through the view. The translator enumerates the complete
	// candidate set (here a single I-1 insertion) and applies the
	// policy's choice atomically.
	tr := viewupdate.NewTranslator(ny, viewupdate.PickFirst{})
	newRow, err := viewupdate.MakeRow(ny.Schema(), 4, "Dee", "New York")
	if err != nil {
		fatal(err)
	}
	cand, err := tr.Apply(db, viewupdate.InsertRequest(newRow))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\ninsert translated by class %s: %s\n", cand.Class, cand.Translation)

	// Delete through the view: two legal translations exist — delete
	// the employee (D-1) or move them out of New York (D-2). We list
	// them, then let a policy that prefers real deletion decide.
	victim, err := viewupdate.MakeRow(ny.Schema(), 1, "Ada", "New York")
	if err != nil {
		fatal(err)
	}
	cands, err := viewupdate.Enumerate(db, ny, viewupdate.DeleteRequest(victim))
	if err != nil {
		fatal(err)
	}
	fmt.Println("\ncandidate translations for deleting Ada:")
	for i, c := range cands {
		fmt.Printf("  %d. [%s] %s\n", i+1, c.Class, c.Translation)
	}
	del := viewupdate.NewTranslator(ny, viewupdate.PreferClasses{Order: []string{"D-1"}})
	cand, err = del.Apply(db, viewupdate.DeleteRequest(victim))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("chosen: [%s] %s\n", cand.Class, cand.Translation)

	fmt.Println("\nview after:")
	for _, row := range ny.Materialize(db).Slice() {
		fmt.Println("  ", row)
	}
	fmt.Println("\ndatabase after:")
	for _, t := range db.Tuples("EMP") {
		fmt.Println("  ", t)
	}
}

// fatal reports the failure through the structured logger and exits.
func fatal(v interface{}) {
	slog.Error(fmt.Sprint(v))
	os.Exit(1)
}
