// Personnel reproduces the paper's §4-1 worked example in full: the
// EMP relation with two locations and a baseball team, Susan's
// location-scoped view and Frank's team-scoped view, and the two
// deletions whose "reasonable translations" differ — a database
// deletion for Susan, an attribute flip for Frank. It also prints the
// discouraged alternative the paper discusses (moving employee #17 to
// the other coast) to show it is enumerated but policy-rejected.
//
// Run with: go run ./examples/personnel
package main

import (
	"fmt"
	"log/slog"
	"os"

	"viewupdate"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/obs"
)

func main() {
	slog.SetDefault(obs.NewLogger(os.Stderr, slog.LevelInfo))
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()

	fmt.Println("EMP relation:")
	for _, t := range db.Tuples("EMP") {
		fmt.Println("  ", t)
	}

	printView := func(name string, v viewupdate.View) {
		fmt.Printf("\n%s (%s):\n", name, v.Name())
		for _, row := range v.Materialize(db).Slice() {
			fmt.Println("  ", row)
		}
	}
	printView("Susan's view — SELECT * FROM EMP WHERE Location='New York'", f.ViewP)
	printView("Frank's view — SELECT * FROM EMP WHERE Baseball=true", f.ViewB)

	// --- Susan deletes employee #17 from her view. ---
	emp17 := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	cands, err := viewupdate.Enumerate(db, f.ViewP, viewupdate.DeleteRequest(emp17))
	if err != nil {
		fatal(err)
	}
	fmt.Println("\nSusan requests: delete employee #17. Candidate translations:")
	for i, c := range cands {
		fmt.Printf("  %d. [%s] %s\n", i+1, c.Class, c.Translation)
	}
	fmt.Println("   (the D-2 candidate is the paper's \"move employee #17 to California\";")
	fmt.Println("    \"we doubt that the California manager would be pleased\" — Susan's")
	fmt.Println("    policy prefers the real deletion)")

	susan := viewupdate.NewTranslator(f.ViewP,
		viewupdate.PreferClasses{Label: "susan", Order: []string{"D-1"}})
	chosen, err := susan.Apply(db, viewupdate.DeleteRequest(emp17))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("applied: [%s] %s\n", chosen.Class, chosen.Translation)
	fmt.Println("employee #17 left the baseball view too (the paper's side note):")
	printView("Frank's view now", f.ViewB)

	// --- Frank deletes employee #14 from his view. ---
	emp14 := f.ViewTuple(f.ViewB, 14, "Frank", "San Francisco", true)
	cands, err = viewupdate.Enumerate(db, f.ViewB, viewupdate.DeleteRequest(emp14))
	if err != nil {
		fatal(err)
	}
	fmt.Println("\nFrank requests: delete employee #14. Candidate translations:")
	for i, c := range cands {
		fmt.Printf("  %d. [%s] %s\n", i+1, c.Class, c.Translation)
	}
	fmt.Println("   (deleting the employee because he left the team would be unreasonable")
	fmt.Println("    \"unless you believe that baseball is all-important\" — Frank's policy")
	fmt.Println("    flips the Baseball attribute instead)")

	frank := viewupdate.NewTranslator(f.ViewB,
		viewupdate.PreferClasses{Label: "frank", Order: []string{"D-2"}})
	chosen, err = frank.Apply(db, viewupdate.DeleteRequest(emp14))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("applied: [%s] %s\n", chosen.Class, chosen.Translation)

	fmt.Println("\nfinal EMP relation (employee #14 kept, off the team):")
	for _, t := range db.Tuples("EMP") {
		fmt.Println("  ", t)
	}

	// --- The replacement the paper hints at: a whole-relation user
	// could express Susan's discouraged alternative as a replacement,
	// which only someone "who can see the effects of that request"
	// should issue. ---
	whole := viewupdate.IdentityView("AllEmployees", f.Rel)
	old := mustRow(whole, 8, "Carol", "New York", true)
	new := mustRow(whole, 8, "Carol", "San Francisco", true)
	all := viewupdate.NewTranslator(whole, viewupdate.RejectAmbiguous{})
	chosen, err = all.Apply(db, viewupdate.ReplaceRequest(old, new))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nrelocation issued against the full relation: [%s] %s\n",
		chosen.Class, chosen.Translation)
}

func mustRow(v viewupdate.View, raw ...interface{}) viewupdate.Tuple {
	t, err := viewupdate.MakeRow(v.Schema(), raw...)
	if err != nil {
		fatal(err)
	}
	return t
}

// fatal reports the failure through the structured logger and exits.
func fatal(v interface{}) {
	slog.Error(fmt.Sprint(v))
	os.Exit(1)
}
