// Simulation drives a sustained stream of view updates through a
// policy-driven translator over a synthetic personnel database and
// reports which algorithm classes actually fire, how many candidate
// translations each request had, and how often requests are rejected —
// the operational picture behind the paper's enumeration theorems.
//
// Run with: go run ./examples/simulation [-n 500] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"

	"viewupdate"
	"viewupdate/internal/obs"
	"viewupdate/internal/update"
	"viewupdate/internal/workload"
)

func main() {
	slog.SetDefault(obs.NewLogger(os.Stderr, slog.LevelInfo))
	n := flag.Int("n", 500, "number of view update requests to issue")
	seed := flag.Int64("seed", 7, "workload seed")
	flag.Parse()

	w, err := workload.NewSP(workload.SPConfig{
		Keys: 4000, Attrs: 4, DomainSize: 5,
		SelectingAttrs: 2, HiddenAttrs: 2, Tuples: 1500,
		Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	// Speed up view maintenance with a secondary index on the first
	// selecting attribute.
	if err := w.DB.CreateIndex("R", "A0"); err != nil {
		fatal(err)
	}

	fmt.Printf("database: %d tuples; view: %s over R with %d hidden attributes\n",
		w.DB.Len("R"), w.View.Selection(), len(w.View.ProjectedOut()))
	fmt.Printf("issuing %d requests (insert/delete/replace round-robin)...\n\n", *n)

	policy := viewupdate.WithDefaults{
		Base:     viewupdate.PreferClasses{Order: []string{"D-1", "R-2", "I-1"}},
		Defaults: map[string]viewupdate.Value{"A2": viewupdate.Str("v01")},
	}
	kinds := []update.Kind{update.Insert, update.Delete, update.Replace}
	classCount := map[string]int{}
	candTotal := map[string]int{}
	candMax := 0
	applied, skipped, sideEffectFree := 0, 0, 0

	for i := 0; i < *n; i++ {
		kind := kinds[i%len(kinds)]
		req, ok := w.NextRequest(kind)
		if !ok {
			skipped++
			continue
		}
		cands, err := viewupdate.Enumerate(w.DB, w.View, req)
		if err != nil {
			skipped++
			continue
		}
		if len(cands) > candMax {
			candMax = len(cands)
		}
		chosen, err := policy.Choose(req, cands)
		if err != nil {
			skipped++
			continue
		}
		eff, err := viewupdate.SideEffects(w.DB, w.View, req, chosen.Translation)
		if err != nil {
			fatal(fmt.Sprintf("side effects: %v", err))
		}
		if eff.None() {
			sideEffectFree++
		}
		if err := w.DB.Apply(chosen.Translation); err != nil {
			fatal(fmt.Sprintf("apply: %v", err))
		}
		applied++
		classCount[chosen.Class]++
		candTotal[kind.String()] += len(cands)
	}

	fmt.Printf("applied %d, skipped %d, side-effect-free %d/%d (SP views: always)\n\n",
		applied, skipped, sideEffectFree, applied)

	fmt.Println("chosen algorithm classes:")
	var classes []string
	for c := range classCount {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Printf("  %-6s %5d\n", c, classCount[c])
	}

	fmt.Println("\nmean candidates per request kind:")
	perKind := applied / len(kinds)
	if perKind == 0 {
		perKind = 1
	}
	for _, k := range kinds {
		fmt.Printf("  %-8s %6.1f (max seen overall: %d)\n",
			k, float64(candTotal[k.String()])/float64(perKind), candMax)
	}

	fmt.Printf("\nfinal database: %d tuples, view: %d rows\n",
		w.DB.Len("R"), w.View.Materialize(w.DB).Len())
}

// fatal reports the failure through the structured logger and exits.
func fatal(v interface{}) {
	slog.Error(fmt.Sprint(v))
	os.Exit(1)
}
