// Directory demonstrates projections and the paper's insertion
// semantics on a staff directory. The public view hides the Status
// attribute and shows only active employees:
//
//	DIRECTORY = π[Id, Name, Dept] σ[Status ∈ {active, oncall}] STAFF
//
// Two effects are on display:
//
//   - extend-insert (I-1) must pick a hidden Status for a brand-new
//     entry; the candidate set has one translation per selecting value,
//     and a WithDefaults policy encodes the DBA's preference;
//   - inserting an entry whose key belongs to an archived (hidden)
//     record triggers I-2: "an object the user wants inserted may refer
//     to an existing object the user has just become aware of" — the
//     archived record is revived, keeping hidden data it carried.
//
// Run with: go run ./examples/directory
package main

import (
	"fmt"
	"log/slog"
	"os"

	"viewupdate"
	"viewupdate/internal/obs"
)

func main() {
	slog.SetDefault(obs.NewLogger(os.Stderr, slog.LevelInfo))
	ids, err := viewupdate.IntRangeDomain("IdDom", 1, 50)
	if err != nil {
		fatal(err)
	}
	names, err := viewupdate.StringDomain("NameDom", "Ada", "Ben", "Cy", "Dee", "Eli")
	if err != nil {
		fatal(err)
	}
	depts, err := viewupdate.StringDomain("DeptDom", "eng", "ops", "sales")
	if err != nil {
		fatal(err)
	}
	status, err := viewupdate.StringDomain("StatusDom", "active", "oncall", "archived")
	if err != nil {
		fatal(err)
	}
	staff, err := viewupdate.NewRelation("STAFF", []viewupdate.Attribute{
		{Name: "Id", Domain: ids},
		{Name: "Name", Domain: names},
		{Name: "Dept", Domain: depts},
		{Name: "Status", Domain: status},
	}, []string{"Id"})
	if err != nil {
		fatal(err)
	}
	sch := viewupdate.NewSchema()
	if err := sch.AddRelation(staff); err != nil {
		fatal(err)
	}

	sel := viewupdate.NewSelection(staff)
	if err := sel.AddTerm("Status", viewupdate.Str("active"), viewupdate.Str("oncall")); err != nil {
		fatal(err)
	}
	directory, err := viewupdate.NewSPView("DIRECTORY", sel, []string{"Id", "Name", "Dept"})
	if err != nil {
		fatal(err)
	}

	db := viewupdate.Open(sch)
	load := func(id int64, name, dept, st string) {
		t, err := viewupdate.MakeRow(staff, id, name, dept, st)
		if err != nil {
			fatal(err)
		}
		if err := db.Load("STAFF", t); err != nil {
			fatal(err)
		}
	}
	load(1, "Ada", "eng", "active")
	load(2, "Ben", "ops", "archived") // hidden from the directory

	fmt.Println("directory view (Status hidden, archived staff invisible):")
	for _, row := range directory.Materialize(db).Slice() {
		fmt.Println("  ", row)
	}

	// --- I-1 with a hidden choice. ---
	newEntry, err := viewupdate.MakeRow(directory.Schema(), 3, "Cy", "eng")
	if err != nil {
		fatal(err)
	}
	cands, err := viewupdate.Enumerate(db, directory, viewupdate.InsertRequest(newEntry))
	if err != nil {
		fatal(err)
	}
	fmt.Println("\ninserting (3, Cy, eng): extend-insert must choose the hidden Status —")
	for i, c := range cands {
		fmt.Printf("  %d. [%s] %s\n", i+1, c.Class, c.Translation)
	}
	policy := viewupdate.WithDefaults{
		Base:     viewupdate.PickFirst{},
		Defaults: map[string]viewupdate.Value{"Status": viewupdate.Str("active")},
	}
	tr := viewupdate.NewTranslator(directory, policy)
	chosen, err := tr.Apply(db, viewupdate.InsertRequest(newEntry))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("DBA default Status=active picked: %s\n", chosen.Translation)

	// --- I-2: the new entry's id belongs to an archived record. ---
	revived, err := viewupdate.MakeRow(directory.Schema(), 2, "Ben", "sales")
	if err != nil {
		fatal(err)
	}
	cands, err = viewupdate.Enumerate(db, directory, viewupdate.InsertRequest(revived))
	if err != nil {
		fatal(err)
	}
	fmt.Println("\ninserting (2, Ben, sales): id 2 is Ben's archived record — I-2 revives it:")
	for i, c := range cands {
		fmt.Printf("  %d. [%s] %s\n", i+1, c.Class, c.Translation)
	}
	chosen, err = tr.Apply(db, viewupdate.InsertRequest(revived))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("applied: [%s] %s\n", chosen.Class, chosen.Translation)

	fmt.Println("\nfinal STAFF relation:")
	for _, t := range db.Tuples("STAFF") {
		fmt.Println("  ", t)
	}
	fmt.Println("\nfinal directory view:")
	for _, row := range directory.Materialize(db).Slice() {
		fmt.Println("  ", row)
	}
}

// fatal reports the failure through the structured logger and exits.
func fatal(v interface{}) {
	slog.Error(fmt.Sprint(v))
	os.Exit(1)
}
