// Enrollment demonstrates join-view updates (§5 of the paper) on a
// three-level reference tree: TRANSCRIPT = ENROLL ⋈ STUDENT ⋈ COURSE ⋈
// DEPT, rooted at ENROLL. It walks SPJ-D (delete touches only the
// root), SPJ-I (inserting a row may insert referenced parents), and
// SPJ-R (the state-machine walk that re-points references, inserts new
// parents, and repairs conflicting parent data), including the view
// side effects on sibling rows that make join views special.
//
// Run with: go run ./examples/enrollment
package main

import (
	"fmt"
	"log/slog"
	"os"

	"viewupdate"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/obs"
)

func main() {
	slog.SetDefault(obs.NewLogger(os.Stderr, slog.LevelInfo))
	u := fixtures.NewUniversity(20)
	db := u.SmallInstance()

	show := func(title string) {
		fmt.Printf("\n%s\n", title)
		for _, row := range u.View.Materialize(db).Slice() {
			fmt.Println("  ", row)
		}
	}
	fmt.Println("TRANSCRIPT view: ENROLL(EID*, Stu, Crs, Grade) ⋈ STUDENT(SID*, ...)")
	fmt.Println("                 ⋈ COURSE(CID*, ..., Dpt) ⋈ DEPT(DName*, Building)")
	show("initial view:")

	tr := viewupdate.NewTranslator(u.View, viewupdate.RejectAmbiguous{})

	// SPJ-I: a new enrollment for a brand-new student. The translation
	// inserts into both ENROLL and STUDENT, atomically.
	newRow := u.ViewTuple(3, "s3", "db", 2, "Cy", 1, "Databases", "cs", "Gates")
	cand, err := tr.Apply(db, viewupdate.InsertRequest(newRow))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nSPJ-I insert enrollment #3 for new student s3:\n  [%s]\n  %s\n",
		cand.Class, cand.Translation)
	show("view after insert:")

	// SPJ-R, shallow: change only the grade — one root replacement.
	old := u.ViewTuple(1, "s1", "db", 4, "Ada", 2, "Databases", "cs", "Gates")
	regraded := u.ViewTuple(1, "s1", "db", 3, "Ada", 2, "Databases", "cs", "Gates")
	cand, err = tr.Apply(db, viewupdate.ReplaceRequest(old, regraded))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nSPJ-R regrade enrollment #1:\n  [%s]\n  %s\n", cand.Class, cand.Translation)

	// SPJ-R, deep: move course 'os' into the ee department and claim
	// its building is Soda. The walk replaces COURSE (re-pointing its
	// Dpt) and replaces DEPT ee's conflicting building — a view side
	// effect for everything else in ee.
	old2 := u.ViewTuple(2, "s2", "os", 3, "Ben", 3, "Systems", "cs", "Gates")
	moved := u.ViewTuple(2, "s2", "os", 3, "Ben", 3, "Systems", "ee", "Soda")
	cand, err = tr.Apply(db, viewupdate.ReplaceRequest(old2, moved))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nSPJ-R move course os to ee (building corrected to Soda):\n  [%s]\n  %s\n",
		cand.Class, cand.Translation)
	show("view after replacements:")

	// SPJ-D: deleting an enrollment touches only ENROLL; students,
	// courses and departments survive.
	victim := u.ViewTuple(3, "s3", "db", 2, "Cy", 1, "Databases", "cs", "Gates")
	cand, err = tr.Apply(db, viewupdate.DeleteRequest(victim))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nSPJ-D drop enrollment #3:\n  [%s]\n  %s\n", cand.Class, cand.Translation)
	fmt.Printf("student s3 still exists in STUDENT: %d students total\n", db.Len("STUDENT"))
	show("final view:")

	// Requests that equate join attributes inconsistently (here the
	// enrollment claims student s2 but carries s1's student columns)
	// are rejected up front, leaving the database untouched.
	snapshot := db.Clone()
	inconsistent, err := viewupdate.MakeRow(u.View.Schema(),
		9, "s2", "db", 1, "s1", "Ada", 2, "db", "Databases", "cs", "cs", "Gates")
	if err != nil {
		fatal(err)
	}
	if err := viewupdate.ValidateRequest(db, u.View, viewupdate.InsertRequest(inconsistent)); err != nil {
		fmt.Printf("\njoin-inconsistent insert rejected as the paper requires:\n  %v\n", err)
	} else {
		fatal("inconsistent insert should have been rejected")
	}
	if !db.Equal(snapshot) {
		fatal("rejected request must not change the database")
	}
}

// fatal reports the failure through the structured logger and exits.
func fatal(v interface{}) {
	slog.Error(fmt.Sprint(v))
	os.Exit(1)
}
