// Diamond demonstrates the paper's §5-1 footnote extension: a join
// view over a rooted DAG. ROOT references A and B, and both A and B
// reference a shared node C:
//
//	  ROOT
//	 /    \
//	A      B
//	 \    /
//	  C        (shared — attributes appear once in the view)
//
// A view row exists only when both reference paths converge on the same
// C tuple; updates through the shared node can side-effect every row
// whose paths cross it — the criteria relaxation the footnote alludes
// to.
//
// Run with: go run ./examples/diamond
package main

import (
	"fmt"
	"log/slog"
	"os"

	"viewupdate"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/obs"
)

func main() {
	slog.SetDefault(obs.NewLogger(os.Stderr, slog.LevelInfo))
	d := fixtures.NewDiamond()
	db := d.ConvergentInstance()

	fmt.Println("base relations:")
	for _, rel := range []string{"ROOT", "A", "B", "C"} {
		for _, t := range db.Tuples(rel) {
			fmt.Println("  ", t)
		}
	}

	show := func(title string) {
		fmt.Printf("\n%s\n", title)
		for _, row := range d.View.Materialize(db).Slice() {
			fmt.Println("  ", row)
		}
	}
	fmt.Println("\nROOT 1's paths converge on C 5; ROOT 2's arms point at C 5 and C 6,")
	fmt.Println("so its row is hidden by the convergence rule:")
	show("DIAMOND view:")

	tr := viewupdate.NewTranslator(d.View, viewupdate.RejectAmbiguous{})

	// Insert a new convergent row: A, B and the shared C are created —
	// C exactly once.
	u := d.ViewTuple(3, 7, 8, 9, 2)
	cand, err := tr.Apply(db, viewupdate.InsertRequest(u))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nSPJ-I insert root 3 (new A 7, B 8, shared C 9):\n  [%s]\n  %s\n",
		cand.Class, cand.Translation)

	// Replace through the shared node: both arms of row 1 re-point at
	// the fresh C 9 — A and B are rewritten, C 9 is reused.
	old := d.ViewTuple(1, 1, 2, 5, 0)
	moved := d.ViewTuple(1, 1, 2, 9, 2)
	req := viewupdate.ReplaceRequest(old, moved)
	chosen, err := tr.Translate(db, req)
	if err != nil {
		fatal(err)
	}
	eff, err := viewupdate.SideEffects(db, d.View, req, chosen.Translation)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nSPJ-R re-point row 1 at C 9:\n  [%s]\n  %s\n  %s\n",
		chosen.Class, chosen.Translation, eff)
	if _, err := tr.Apply(db, req); err != nil {
		fatal(err)
	}
	show("final view:")
}

// fatal reports the failure through the structured logger and exits.
func fatal(v interface{}) {
	slog.Error(fmt.Sprint(v))
	os.Exit(1)
}
