-- The paper's §4-1 personnel scenario as a vupdate script.
-- Run with: go run ./cmd/vupdate -f examples/scripts/personnel.sql

CREATE DOMAIN EmpNoDom AS INT RANGE 1 TO 20;
CREATE DOMAIN NameDom AS STRING ('Susan', 'Frank', 'Alice', 'Bob', 'Carol');
CREATE DOMAIN LocDom AS STRING ('New York', 'San Francisco');
CREATE DOMAIN TeamDom AS BOOL;

CREATE TABLE EMP (EmpNo EmpNoDom, Name NameDom, Location LocDom,
                  Baseball TeamDom, PRIMARY KEY (EmpNo));

INSERT INTO EMP VALUES (17, 'Susan', 'New York', true);
INSERT INTO EMP VALUES (14, 'Frank', 'San Francisco', true);
INSERT INTO EMP VALUES (3, 'Alice', 'New York', false);
INSERT INTO EMP VALUES (8, 'Carol', 'New York', true);

-- Susan's view: the New York office.
CREATE VIEW ViewP AS SELECT * FROM EMP WHERE Location = 'New York';
-- Frank's view: the baseball team.
CREATE VIEW ViewB AS SELECT * FROM EMP WHERE Baseball = true;

-- The two legal translations of Susan's deletion, before deciding.
SHOW CANDIDATES FOR DELETE FROM ViewP WHERE EmpNo = 17;

-- Susan means it: deletion destroys the record.
SET POLICY ViewP PREFER 'D-1';
DELETE FROM ViewP WHERE EmpNo = 17;

-- Frank means "off the team", not "fired".
SET POLICY ViewB PREFER 'D-2';
DELETE FROM ViewB WHERE EmpNo = 14;

SELECT * FROM EMP;
