package viewupdate

// Horizontal sharding benchmarks: aggregate commit throughput of the
// root-key partitioned serving pipeline as the shard count grows, same
// MaxBatch and admission limits at every point. shards-1 is the
// single-writer persist.Store pipeline (one fsync stream); shards-N
// runs N independent WAL streams behind the router and the cross-shard
// coordinator, with a fixed fraction of commits spanning two shards.
//
// The sweep pins two regime choices, both reported in the JSON:
//
//   - MaxBatch=1 — one durability barrier per commit — models the
//     measured production regime: the serving benchmark behind
//     BENCH_server.json records commits_per_sync ≈ 1.01 (group commit
//     exists but real closed-loop load arrives too spread out to fill
//     batches), so the single-writer engine's throughput IS its serial
//     fsync rate. That serialized stream is exactly what sharding
//     breaks up; deep batches would amortize the barrier and hide the
//     stream limit the tentpole exists to remove.
//   - Every WAL sync runs against modeled datacenter block storage:
//     the real fsync plus padding to sync_latency_ms total (2ms —
//     BENCH_server.json's own fsync p99 is 2.1ms). The dev box's local
//     ext4 answers fsync in ~0.2ms and coalesces concurrent barriers
//     in its journal, which makes a single-core host CPU-bound long
//     before it is stream-bound; the padding restores the latency the
//     architecture is built for while every byte still hits media.
//
// Results land in BENCH_shard.json. Run with:
//
//	go test -bench 'BenchmarkShardScale' -run '^$' -benchtime 2000x .
//
// or `make bench-shard`. CI asserts the 8-shard aggregate is at least
// 3x the 1-shard baseline.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"viewupdate/internal/server"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/wal"
)

// shardBenchScript is the parent/child schema of the sharded soak: a
// cross-shard commit inserts an EMP row and extends its DEPT parent in
// one translation.
const shardBenchScript = `
CREATE DOMAIN EKey AS INT RANGE 1 TO 100000;
CREATE DOMAIN DKey AS INT RANGE 1 TO 100000;
CREATE DOMAIN Funds AS INT RANGE 0 TO 100;
CREATE TABLE DEPT (DNo DKey, Budget Funds, PRIMARY KEY (DNo));
CREATE TABLE EMP (ENo EKey, Dept DKey, PRIMARY KEY (ENo),
                  FOREIGN KEY (Dept) REFERENCES DEPT);
CREATE VIEW DV AS SELECT * FROM DEPT;
CREATE VIEW EV AS SELECT * FROM EMP;
CREATE JOIN VIEW ED ROOT EV WITH EV (Dept) REFERENCES DV;
`

// benchSyncLatency is the modeled durability-barrier latency: real
// local fsync padded out to datacenter block-storage time.
const benchSyncLatency = 2 * time.Millisecond

// slowMedia wraps WAL media so every durability barrier costs at least
// benchSyncLatency: the real fsync runs first (every byte hits media),
// then the remainder is slept off. Writes pass straight through.
type slowMedia struct {
	wal.File
}

func (s slowMedia) Sync() error {
	start := time.Now()
	if err := s.File.Sync(); err != nil {
		return err
	}
	if d := benchSyncLatency - time.Since(start); d > 0 {
		time.Sleep(d)
	}
	return nil
}

// shardBenchEntry is one shard count's result row in BENCH_shard.json.
type shardBenchEntry struct {
	Shards        int     `json:"shards"`
	Commits       int64   `json:"commits"`
	CrossFraction float64 `json:"cross_fraction"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	NsPerCommit   int64   `json:"ns_per_commit"`
	SyncLatencyMS float64 `json:"sync_latency_ms"`
	MaxBatch      int     `json:"max_batch"`
}

var benchShardResults = map[string]shardBenchEntry{}

// writeBenchShard rewrites BENCH_shard.json with every entry collected
// so far plus the scaling ratios against the 1-shard baseline.
func writeBenchShard(b *testing.B) {
	b.Helper()
	out := map[string]interface{}{"benchmarks": benchShardResults}
	if base, ok := benchShardResults["ShardScale/shards-1"]; ok && base.CommitsPerSec > 0 {
		for _, n := range []int{2, 4, 8} {
			if e, ok := benchShardResults[fmt.Sprintf("ShardScale/shards-%d", n)]; ok {
				out[fmt.Sprintf("speedup_%dx_commits_per_sec", n)] = e.CommitsPerSec / base.CommitsPerSec
			}
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_shard.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// benchShardN drives b.N durable commits from 64 concurrent writers
// through an engine with the given shard count; every 4th commit is a
// two-relation extend-insert (cross-shard whenever the two root keys
// hash apart). Commit() returns only after the acked-implies-durable
// barrier, so the measured rate is fsync-bound end-to-end throughput.
func benchShardN(b *testing.B, shards int) {
	eng, err := server.NewEngine(server.Config{
		Dir: b.TempDir(), Shards: shards,
		MaxInFlight: 256, MaxBatch: 1,
		RequestTimeout: time.Minute,
		WrapWAL:        func(f wal.File) wal.File { return slowMedia{f} },
		WrapShardWAL:   func(_ int, f wal.File) wal.File { return slowMedia{f} },
	}, shardBenchScript)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	db, _ := eng.Snapshot()
	dept := db.Schema().Relation("DEPT")
	emp := db.Schema().Relation("EMP")

	const workers = 64
	const crossEvery = 4
	var next, crossN atomic.Int64
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				var tr *update.Translation
				if i%crossEvery == 0 {
					crossN.Add(1)
					tr = update.NewTranslation(
						update.NewInsert(tuple.MustNew(dept, value.NewInt(i), value.NewInt(7))),
						update.NewInsert(tuple.MustNew(emp, value.NewInt(i), value.NewInt(i))),
					)
				} else {
					tr = update.NewTranslation(
						update.NewInsert(tuple.MustNew(dept, value.NewInt(i+50000), value.NewInt(7))))
				}
				if _, err := eng.Commit(ctx, tr, false, 0); err != nil {
					errCh <- fmt.Errorf("commit %d (shards=%d): %w", i, shards, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		b.Fatal(err)
	default:
	}
	perSec := 0.0
	if elapsed > 0 {
		perSec = float64(b.N) / elapsed.Seconds()
	}
	nsPer := int64(0)
	if b.N > 0 {
		nsPer = elapsed.Nanoseconds() / int64(b.N)
	}
	benchShardResults[fmt.Sprintf("ShardScale/shards-%d", shards)] = shardBenchEntry{
		Shards:        shards,
		Commits:       int64(b.N),
		CrossFraction: float64(crossN.Load()) / float64(b.N),
		CommitsPerSec: perSec,
		NsPerCommit:   nsPer,
		SyncLatencyMS: float64(benchSyncLatency) / float64(time.Millisecond),
		MaxBatch:      1,
	}
	b.ReportMetric(perSec, "commits/s")
	writeBenchShard(b)
}

// BenchmarkShardScale sweeps the shard count. Key spaces are disjoint
// (cross-inserts take DNo 1..50000, single inserts 50001 up), so every
// commit is conflict-free; domains stay small because the schema layer
// materializes finite domains (paper-faithful), capping b.N at 50000.
func BenchmarkShardScale(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) { benchShardN(b, n) })
	}
}
