package viewupdate

// Observability benchmarks: the overhead of the instrumentation layer
// itself (disabled vs enabled sink) and an instrumented pipeline run
// that emits BENCH_obs.json with throughput, latency quantiles and the
// per-criterion rejection histogram. Run with:
//
//	go test -bench 'BenchmarkObs' -run '^$' .

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"viewupdate/internal/core"
	"viewupdate/internal/obs"
	"viewupdate/internal/update"
	"viewupdate/internal/workload"
)

// withSink installs s for the duration of the benchmark and restores
// the previous instrumentation state afterwards.
func withSink(b *testing.B, s *obs.Sink) {
	b.Helper()
	prev := obs.Active()
	obs.Enable(s)
	b.Cleanup(func() { obs.Enable(prev) })
}

// obsBenchWorkload builds the measured SP instance.
func obsBenchWorkload(b *testing.B) (*workload.SPWorkload, core.Request) {
	b.Helper()
	w := workload.MustNewSP(workload.SPConfig{
		Keys: 400, Attrs: 4, DomainSize: 6,
		SelectingAttrs: 2, HiddenAttrs: 2, Tuples: 200, Seed: 21,
	})
	r, ok := w.NextRequest(update.Delete)
	if !ok {
		b.Fatal("no request")
	}
	return w, r
}

// BenchmarkObsOverhead measures one full Translate with instrumentation
// disabled and enabled; the delta is the cost of the spans, counters
// and histograms on the hot path.
func BenchmarkObsOverhead(b *testing.B) {
	w, r := obsBenchWorkload(b)
	tr := core.NewTranslator(w.View, nil)
	b.Run("disabled", func(b *testing.B) {
		withSink(b, nil)
		for i := 0; i < b.N; i++ {
			if _, err := tr.Translate(w.DB, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		withSink(b, obs.NewSink(nil))
		for i := 0; i < b.N; i++ {
			if _, err := tr.Translate(w.DB, r); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkObsPipeline runs the traced pipeline (probes included, so
// the criteria reject naive alternatives) under an enabled sink and
// writes the collected metrics to BENCH_obs.json: candidates per
// second, translate latency p50/p99, and rejections per criterion.
func BenchmarkObsPipeline(b *testing.B) {
	w, _ := obsBenchWorkload(b)
	sink := obs.NewSink(nil)
	withSink(b, sink)
	tr := core.NewTranslator(w.View, nil)
	kinds := []update.Kind{update.Insert, update.Delete, update.Replace}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, ok := w.NextRequest(kinds[i%len(kinds)])
		if !ok {
			continue
		}
		if _, _, err := tr.TranslateTraced(w.DB, r); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	snap := sink.Metrics().Snapshot()
	elapsed := b.Elapsed().Seconds()
	candidates := snap.Counters["core.candidates.generated"]
	perSec := 0.0
	if elapsed > 0 {
		perSec = float64(candidates) / elapsed
	}
	// Hot-path contract evidence, measured directly and folded into the
	// report: the disabled path must cost roughly a nil check, and the
	// enabled-path Observe must not allocate. Measured with plain timed
	// loops — testing.Benchmark cannot be nested inside a running
	// benchmark.
	const hotIters = 2_000_000
	hotLoop := func() float64 {
		start := time.Now()
		for i := 0; i < hotIters; i++ {
			obs.Observe("bench.obs.hot", int64(i))
			obs.Inc("bench.obs.hot.count")
		}
		return float64(time.Since(start)) / hotIters
	}
	obs.Enable(nil)
	disabledOpNS := hotLoop()
	obs.Enable(sink)
	obs.Observe("bench.obs.hot", 0) // create the registry entries off the measured path
	obs.Inc("bench.obs.hot.count")
	enabledOpNS := hotLoop()
	observeAllocs := testing.AllocsPerRun(1000, func() {
		obs.Observe("bench.obs.hot", 42)
	})

	lat := snap.Histograms["core.trace.translate.ns"]
	out := map[string]interface{}{
		"benchmark":          "BenchmarkObsPipeline",
		"iterations":         b.N,
		"candidates":         candidates,
		"candidates_per_sec": perSec,
		"translate_ns_p50":   lat.P50,
		"translate_ns_p99":   lat.P99,
		"translate_ns_p999":  lat.P999,
		"hot_path": map[string]interface{}{
			"disabled_op_ns":         disabledOpNS,
			"enabled_op_ns":          enabledOpNS,
			"observe_allocs_enabled": observeAllocs,
		},
		"rejections": map[string]int64{
			"criterion_1": snap.Counters["core.criteria.reject.1"],
			"criterion_2": snap.Counters["core.criteria.reject.2"],
			"criterion_3": snap.Counters["core.criteria.reject.3"],
			"criterion_4": snap.Counters["core.criteria.reject.4"],
			"criterion_5": snap.Counters["core.criteria.reject.5"],
		},
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
