package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the vupdate binary into a temp dir once per test
// run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vupdate")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building vupdate: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("vupdate %v: %v\nstdout: %s\nstderr: %s", args, err, stdout.String(), stderr.String())
	}
	return stdout.String(), stderr.String()
}

// TestCLISmoke is the end-to-end smoke of the shell binary: create a
// durable store, insert through a view, then recover the store with
// -recover and read the row back — the committed update survives the
// process boundary.
func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	data := filepath.Join(dir, "data")

	script := filepath.Join(dir, "setup.sql")
	if err := os.WriteFile(script, []byte(`
CREATE DOMAIN NoDom AS INT RANGE 1 TO 100;
CREATE DOMAIN LocDom AS STRING ('New York', 'San Francisco');
CREATE TABLE EMP (EmpNo NoDom, Location LocDom, PRIMARY KEY (EmpNo));
CREATE VIEW V AS SELECT * FROM EMP WHERE Location = 'New York';
INSERT INTO V VALUES (7, 'New York');
`), 0o644); err != nil {
		t.Fatal(err)
	}
	run(t, bin, "-wal", data, "-f", script)

	// The store exists and -recover replays it cleanly.
	if _, err := os.Stat(filepath.Join(data, "snapshot.json")); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}
	_, stderr := run(t, bin, "-wal", data, "-recover")
	if !strings.Contains(stderr, "replayed 1") {
		t.Fatalf("-recover printed no report:\n%s", stderr)
	}

	// A fresh process sees the committed row. Views are not durable, so
	// query the base table.
	stdout, _ := run(t, bin, "-wal", data, "-e", "SELECT * FROM EMP")
	if !strings.Contains(stdout, "7") || !strings.Contains(stdout, "New York") {
		t.Fatalf("recovered row missing:\n%s", stdout)
	}
	if !strings.Contains(stdout, "(1 rows)") && !strings.Contains(stdout, "(1 row") {
		t.Fatalf("unexpected row count:\n%s", stdout)
	}
}
