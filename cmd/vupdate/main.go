// Command vupdate is an interactive shell (and script runner) for the
// view-update engine: define domains, tables and views, issue view
// updates, inspect the complete candidate-translation sets, and install
// translator policies.
//
// Usage:
//
//	vupdate                 # REPL on stdin
//	vupdate -f script.sql   # execute a script, then exit
//	vupdate -e 'SHOW TABLES' # execute one statement, then exit
//	vupdate -wal data/       # durable: recover data/ (or create it),
//	                         # journal committed updates through its WAL
//	vupdate -wal data/ -recover  # recover, print the report, exit
//
// The statement language (see internal/sqlish):
//
//	CREATE DOMAIN LocDom AS STRING ('New York', 'San Francisco');
//	CREATE DOMAIN NoDom AS INT RANGE 1 TO 100;
//	CREATE TABLE EMP (EmpNo NoDom, Location LocDom, PRIMARY KEY (EmpNo));
//	CREATE VIEW V AS SELECT * FROM EMP WHERE Location = 'New York';
//	CREATE JOIN VIEW J ROOT CV WITH CV (X) REFERENCES PV;
//	INSERT INTO V VALUES (1, 'New York');
//	DELETE FROM V WHERE EmpNo = 1;
//	UPDATE V SET Location = 'New York' WHERE EmpNo = 2;
//	SHOW CANDIDATES FOR DELETE FROM V WHERE EmpNo = 1;
//	SET POLICY V PREFER 'D-1', 'D-2';
//	SET DEFAULT V.Status = 'active';
//	SELECT * FROM V;  SHOW TABLES;  SHOW VIEWS;  SHOW POLICIES;
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"viewupdate/internal/dialog"
	"viewupdate/internal/obs"
	"viewupdate/internal/persist"
	"viewupdate/internal/sqlish"
	"viewupdate/internal/wal"
)

func main() {
	file := flag.String("f", "", "execute the statements in this file and exit")
	expr := flag.String("e", "", "execute this statement and exit")
	explain := flag.Bool("explain", false, "print an explain trace for every view update: each candidate translation with its accept/reject verdict and the violated criterion")
	metrics := flag.Bool("metrics", false, "dump pipeline counters and latency histograms as JSON on exit")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	walDir := flag.String("wal", "", "durable store directory: recover it if present, create it otherwise; committed updates are journaled through its write-ahead log")
	syncMode := flag.String("sync", "commit", "WAL sync policy (with -wal): commit|always|never")
	recoverOnly := flag.Bool("recover", false, "with -wal: recover the store, print the recovery report, and exit")
	flag.Parse()

	logger, err := obs.SetupDefault(os.Stderr, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	obs.Enable(obs.NewSink(logger))
	var store *persist.Store
	exit := func(code int) {
		if store != nil {
			if err := store.Close(); err != nil {
				slog.Error("closing store", "err", err)
				if code == 0 {
					code = 1
				}
			}
		}
		dumpMetrics(*metrics)
		os.Exit(code)
	}

	session := sqlish.NewSession()
	session.SetExplain(*explain)

	if *recoverOnly && *walDir == "" {
		fmt.Fprintln(os.Stderr, "error: -recover requires -wal")
		os.Exit(2)
	}
	if *walDir != "" {
		store, err = openStore(session, *walDir, *syncMode)
		if err != nil {
			slog.Error("opening durable store", "dir", *walDir, "err", err)
			os.Exit(1)
		}
		if *recoverOnly {
			exit(0)
		}
	}

	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			slog.Error("reading script", "path", *file, "err", err)
			exit(1)
		}
		out, err := session.ExecScript(string(data))
		if out != "" {
			fmt.Print(out)
		}
		if err != nil {
			slog.Error("executing script", "path", *file, "err", err)
			exit(1)
		}
		exit(0)
	}
	if *expr != "" {
		out, err := session.ExecLine(*expr)
		if out != "" {
			fmt.Println(out)
		}
		if err != nil {
			slog.Error("executing statement", "err", err)
			exit(1)
		}
		exit(0)
	}

	fmt.Println("vupdate — view update translator shell (PODS '85 reproduction)")
	fmt.Println("statements end with ';'; type 'help;' for a summary, 'exit;' to quit")
	repl(session)
	exit(0)
}

// openStore recovers (or creates) the durable store at dir and attaches
// it to the session. Recovery prints its report — replayed records,
// discarded uncommitted records, torn-tail truncation — to stderr.
func openStore(session *sqlish.Session, dir, syncMode string) (*persist.Store, error) {
	pol, err := wal.ParseSyncPolicy(syncMode)
	if err != nil {
		return nil, err
	}
	opts := persist.Options{Sync: pol}
	st, err := persist.Open(dir, opts)
	switch {
	case err == nil:
		fmt.Fprintln(os.Stderr, "recovered:", st.Report())
	case errors.Is(err, persist.ErrNoStore):
		st, err = persist.Create(dir, session.DB(), opts)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(os.Stderr, "created durable store in", dir)
	default:
		return nil, err
	}
	if err := session.AttachStore(st); err != nil {
		st.Close()
		return nil, err
	}
	return st, nil
}

// dumpMetrics writes the instrumentation snapshot as JSON to stderr
// when enabled.
func dumpMetrics(enabled bool) {
	if !enabled {
		return
	}
	s := obs.Active()
	if s == nil {
		return
	}
	data, err := s.Metrics().Snapshot().JSON()
	if err != nil {
		slog.Error("rendering metrics", "err", err)
		return
	}
	fmt.Fprintln(os.Stderr, string(data))
}

func repl(session *sqlish.Session) {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("vupdate> ")
		} else {
			fmt.Print("      -> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		stmtText := strings.TrimSpace(buf.String())
		if !strings.HasSuffix(strings.TrimRight(stmtText, " \t\n"), ";") {
			prompt()
			continue
		}
		buf.Reset()
		trimmed := strings.TrimRight(stmtText, "; \t\n")
		switch strings.ToLower(trimmed) {
		case "":
			prompt()
			continue
		case "exit", "quit":
			return
		case "help":
			fmt.Println(helpText)
			prompt()
			continue
		}
		// CONFIGURE VIEW <name>; runs the translator-selection dialog
		// (the paper's "additional semantics" gathered at view
		// definition time) on this terminal.
		if fields := strings.Fields(trimmed); len(fields) == 3 &&
			strings.EqualFold(fields[0], "configure") && strings.EqualFold(fields[1], "view") {
			name := fields[2]
			v := session.View(name)
			if v == nil {
				fmt.Println("error: unknown view", name)
			} else if p, err := dialog.RunScanner(scanner, os.Stdout, v); err != nil {
				fmt.Println("error:", err)
			} else if err := session.SetCustomPolicy(name, p); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("translator for %s configured\n", name)
			}
			prompt()
			continue
		}
		out, err := session.ExecScript(stmtText)
		if out != "" {
			fmt.Print(out)
			if !strings.HasSuffix(out, "\n") {
				fmt.Println()
			}
		}
		if err != nil {
			fmt.Println("error:", err)
		}
		prompt()
	}
}

const helpText = `statements:
  CREATE DOMAIN name AS STRING ('a','b') | INT RANGE lo TO hi | INT (1,2) | BOOL;
  CREATE TABLE name (col dom, ..., PRIMARY KEY (k), FOREIGN KEY (fk) REFERENCES parent);
  CREATE VIEW name AS SELECT cols|* FROM table [WHERE a IN (...) AND b = v];
  CREATE JOIN VIEW name ROOT spview [WITH spview (attrs) REFERENCES spview, ...];
  INSERT INTO table|view VALUES (v, ...);
  DELETE FROM table|view WHERE a = v [AND ...];     -- must match one row
  UPDATE table|view SET a = v [, ...] WHERE ...;    -- single-row replacement
  SELECT * FROM table|view [WHERE ...];
  SHOW TABLES; SHOW VIEWS; SHOW POLICIES;
  SHOW CANDIDATES FOR <insert|delete|update>;
  SHOW EFFECTS FOR <insert|delete|update>;  -- preview translation + side effects
  BEGIN; ... COMMIT; | ROLLBACK;   -- staged multi-statement transaction
  SET POLICY view PREFER 'D-1', 'D-2';
  SET DEFAULT view.attr = value;
  SAVE TO 'file'; LOAD FROM 'file';   -- journal save / script replay
  CONFIGURE VIEW name;   -- interactive translator-selection dialog`
