// Command vupdate is an interactive shell (and script runner) for the
// view-update engine: define domains, tables and views, issue view
// updates, inspect the complete candidate-translation sets, and install
// translator policies.
//
// Usage:
//
//	vupdate                 # REPL on stdin
//	vupdate -f script.sql   # execute a script, then exit
//	vupdate -e 'SHOW TABLES' # execute one statement, then exit
//
// The statement language (see internal/sqlish):
//
//	CREATE DOMAIN LocDom AS STRING ('New York', 'San Francisco');
//	CREATE DOMAIN NoDom AS INT RANGE 1 TO 100;
//	CREATE TABLE EMP (EmpNo NoDom, Location LocDom, PRIMARY KEY (EmpNo));
//	CREATE VIEW V AS SELECT * FROM EMP WHERE Location = 'New York';
//	CREATE JOIN VIEW J ROOT CV WITH CV (X) REFERENCES PV;
//	INSERT INTO V VALUES (1, 'New York');
//	DELETE FROM V WHERE EmpNo = 1;
//	UPDATE V SET Location = 'New York' WHERE EmpNo = 2;
//	SHOW CANDIDATES FOR DELETE FROM V WHERE EmpNo = 1;
//	SET POLICY V PREFER 'D-1', 'D-2';
//	SET DEFAULT V.Status = 'active';
//	SELECT * FROM V;  SHOW TABLES;  SHOW VIEWS;  SHOW POLICIES;
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"viewupdate/internal/dialog"
	"viewupdate/internal/obs"
	"viewupdate/internal/sqlish"
)

func main() {
	file := flag.String("f", "", "execute the statements in this file and exit")
	expr := flag.String("e", "", "execute this statement and exit")
	explain := flag.Bool("explain", false, "print an explain trace for every view update: each candidate translation with its accept/reject verdict and the violated criterion")
	metrics := flag.Bool("metrics", false, "dump pipeline counters and latency histograms as JSON on exit")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	flag.Parse()

	logger, err := obs.SetupDefault(os.Stderr, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	obs.Enable(obs.NewSink(logger))
	exit := func(code int) {
		dumpMetrics(*metrics)
		os.Exit(code)
	}

	session := sqlish.NewSession()
	session.SetExplain(*explain)

	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			slog.Error("reading script", "path", *file, "err", err)
			exit(1)
		}
		out, err := session.ExecScript(string(data))
		if out != "" {
			fmt.Print(out)
		}
		if err != nil {
			slog.Error("executing script", "path", *file, "err", err)
			exit(1)
		}
		exit(0)
	}
	if *expr != "" {
		out, err := session.ExecLine(*expr)
		if out != "" {
			fmt.Println(out)
		}
		if err != nil {
			slog.Error("executing statement", "err", err)
			exit(1)
		}
		exit(0)
	}

	fmt.Println("vupdate — view update translator shell (PODS '85 reproduction)")
	fmt.Println("statements end with ';'; type 'help;' for a summary, 'exit;' to quit")
	repl(session)
	exit(0)
}

// dumpMetrics writes the instrumentation snapshot as JSON to stderr
// when enabled.
func dumpMetrics(enabled bool) {
	if !enabled {
		return
	}
	s := obs.Active()
	if s == nil {
		return
	}
	data, err := s.Metrics().Snapshot().JSON()
	if err != nil {
		slog.Error("rendering metrics", "err", err)
		return
	}
	fmt.Fprintln(os.Stderr, string(data))
}

func repl(session *sqlish.Session) {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("vupdate> ")
		} else {
			fmt.Print("      -> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		stmtText := strings.TrimSpace(buf.String())
		if !strings.HasSuffix(strings.TrimRight(stmtText, " \t\n"), ";") {
			prompt()
			continue
		}
		buf.Reset()
		trimmed := strings.TrimRight(stmtText, "; \t\n")
		switch strings.ToLower(trimmed) {
		case "":
			prompt()
			continue
		case "exit", "quit":
			return
		case "help":
			fmt.Println(helpText)
			prompt()
			continue
		}
		// CONFIGURE VIEW <name>; runs the translator-selection dialog
		// (the paper's "additional semantics" gathered at view
		// definition time) on this terminal.
		if fields := strings.Fields(trimmed); len(fields) == 3 &&
			strings.EqualFold(fields[0], "configure") && strings.EqualFold(fields[1], "view") {
			name := fields[2]
			v := session.View(name)
			if v == nil {
				fmt.Println("error: unknown view", name)
			} else if p, err := dialog.RunScanner(scanner, os.Stdout, v); err != nil {
				fmt.Println("error:", err)
			} else if err := session.SetCustomPolicy(name, p); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("translator for %s configured\n", name)
			}
			prompt()
			continue
		}
		out, err := session.ExecScript(stmtText)
		if out != "" {
			fmt.Print(out)
			if !strings.HasSuffix(out, "\n") {
				fmt.Println()
			}
		}
		if err != nil {
			fmt.Println("error:", err)
		}
		prompt()
	}
}

const helpText = `statements:
  CREATE DOMAIN name AS STRING ('a','b') | INT RANGE lo TO hi | INT (1,2) | BOOL;
  CREATE TABLE name (col dom, ..., PRIMARY KEY (k), FOREIGN KEY (fk) REFERENCES parent);
  CREATE VIEW name AS SELECT cols|* FROM table [WHERE a IN (...) AND b = v];
  CREATE JOIN VIEW name ROOT spview [WITH spview (attrs) REFERENCES spview, ...];
  INSERT INTO table|view VALUES (v, ...);
  DELETE FROM table|view WHERE a = v [AND ...];     -- must match one row
  UPDATE table|view SET a = v [, ...] WHERE ...;    -- single-row replacement
  SELECT * FROM table|view [WHERE ...];
  SHOW TABLES; SHOW VIEWS; SHOW POLICIES;
  SHOW CANDIDATES FOR <insert|delete|update>;
  SHOW EFFECTS FOR <insert|delete|update>;  -- preview translation + side effects
  SHOW EFFECTS FOR <insert|delete|update>;   -- preview translation + side effects
  SET POLICY view PREFER 'D-1', 'D-2';
  SET DEFAULT view.attr = value;
  SAVE TO 'file'; LOAD FROM 'file';   -- journal save / script replay
  CONFIGURE VIEW name;   -- interactive translator-selection dialog`
