package main

import (
	"testing"
	"time"
)

// TestBackoffSchedule pins the shape of the retry schedule: ceilings
// double from base to cap and every delay falls inside the jitter
// window [hint, hint+ceiling).
func TestBackoffSchedule(t *testing.T) {
	b := newBackoff(50*time.Millisecond, 800*time.Millisecond, 1)
	wantCeil := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 800 * time.Millisecond,
		800 * time.Millisecond,
	}
	for attempt, want := range wantCeil {
		if got := b.ceiling(attempt); got != want {
			t.Fatalf("ceiling(%d) = %s, want %s", attempt, got, want)
		}
	}
	hint := 1 * time.Second
	for attempt := range wantCeil {
		for i := 0; i < 100; i++ {
			d := b.delay(attempt, hint)
			if d < hint || d >= hint+wantCeil[attempt] {
				t.Fatalf("delay(%d, %s) = %s outside [%s, %s)", attempt, hint, d, hint, hint+wantCeil[attempt])
			}
		}
	}
}

// TestBackoffJitterSpreads is the thundering-herd property: delays for
// one attempt are not a constant — concurrent rejected clients retry
// at spread-out times rather than in lockstep.
func TestBackoffJitterSpreads(t *testing.T) {
	b := newBackoff(50*time.Millisecond, 800*time.Millisecond, 42)
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		seen[b.delay(3, 0)] = true
	}
	if len(seen) < 10 {
		t.Fatalf("50 draws produced only %d distinct delays; jitter is not spreading", len(seen))
	}
}

// TestBackoffDeterministic pins reproducibility: the same seed yields
// the same schedule, so a recorded chaos run can be replayed exactly.
func TestBackoffDeterministic(t *testing.T) {
	a := newBackoff(50*time.Millisecond, 800*time.Millisecond, 7)
	b := newBackoff(50*time.Millisecond, 800*time.Millisecond, 7)
	for attempt := 0; attempt < 8; attempt++ {
		if da, db := a.delay(attempt, 0), b.delay(attempt, 0); da != db {
			t.Fatalf("attempt %d: seeds diverged (%s vs %s)", attempt, da, db)
		}
	}
}

// TestBackoffDegenerateConfig pins the defaulting: non-positive base
// and a cap below base still produce a sane schedule.
func TestBackoffDegenerateConfig(t *testing.T) {
	b := newBackoff(0, 0, 1)
	if b.ceiling(0) <= 0 {
		t.Fatal("defaulted backoff has non-positive ceiling")
	}
	if d := b.delay(5, 0); d < 0 || d >= b.cap {
		t.Fatalf("delay %s outside [0, cap %s)", d, b.cap)
	}
}
