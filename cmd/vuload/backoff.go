package main

import (
	"math/rand"
	"time"
)

// A backoff computes retry delays as capped exponential backoff with
// full jitter: attempt n draws uniformly from [hint, hint + ceiling)
// where ceiling doubles per attempt from base up to cap, and hint is
// the server's Retry-After demand (a hard floor). Full jitter is the
// thundering-herd fix: when many clients are rejected in the same
// instant — an overload burst, a server restart — their retries spread
// across the whole window instead of re-arriving in lockstep at the
// exact Retry-After boundary.
type backoff struct {
	base time.Duration
	cap  time.Duration
	rng  *rand.Rand
}

// newBackoff builds a schedule with the given first-attempt ceiling and
// cap, drawing jitter from seed (per-client seeds keep clients
// decorrelated AND runs reproducible).
func newBackoff(base, cap time.Duration, seed int64) *backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if cap < base {
		cap = base
	}
	return &backoff{base: base, cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// ceiling is the jitter window for the given 0-based attempt:
// base << attempt, capped.
func (b *backoff) ceiling(attempt int) time.Duration {
	c := b.base
	for i := 0; i < attempt; i++ {
		c *= 2
		if c >= b.cap || c <= 0 {
			return b.cap
		}
	}
	if c > b.cap {
		return b.cap
	}
	return c
}

// delay returns the sleep before retrying attempt (0-based). hint is
// the server's Retry-After (zero when absent) and lower-bounds the
// result; the jittered window rides on top of it.
func (b *backoff) delay(attempt int, hint time.Duration) time.Duration {
	if hint < 0 {
		hint = 0
	}
	return hint + time.Duration(b.rng.Int63n(int64(b.ceiling(attempt))))
}
