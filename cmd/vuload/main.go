// Command vuload is a wire-level load generator for vuserved: it
// drives N concurrent HTTP clients through an insert/replace/delete
// view-update workload against disjoint key partitions (plus an
// optional contended hot-key mix), measures client-side latency, and
// emits BENCH_server.json with throughput, p50/p99/p999 latency,
// conflict/overload rates, the server's group-commit counters
// (commits per fsync) scraped from /metricsz, and the server-side
// per-stage pipeline breakdown (translate/verify/queue/commit/fsync/
// publish) scraped from the Prometheus /metrics endpoint before and
// after the run.
//
// Against a replicated deployment (vuserved -follow) the workload can
// additionally mix in view reads spread across the read replicas and
// hold live /subscribe streams open: -read-fraction sets the read mix,
// -read-addrs points reads (and subscriptions) at the follower fleet,
// and -subscribers counts pushed change events. The report then grows
// a "replica" block: read throughput and latency, fan-out events/sec,
// shed events, and the follower staleness quantiles (commit-visibility
// lag, primary publish → follower apply) scraped from each follower's
// server.replica.lag.ns histogram.
//
// Usage:
//
//	vuload -addr http://localhost:8080 -clients 8 -requests 200
//	vuload -addr ... -hot 0.2            # 20% contended ops → conflicts
//	vuload -addr ... -assert-batching    # exit 1 unless >1 commit/fsync
//	vuload -addr http://primary:8080 -read-fraction 0.8 \
//	       -read-addrs http://f1:8081,http://f2:8082 -subscribers 4
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptrace"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"viewupdate/internal/obs"
)

// benchReport is the BENCH_server.json shape.
type benchReport struct {
	Config     benchConfig           `json:"config"`
	ElapsedNS  int64                 `json:"elapsed_ns"`
	Sent       int64                 `json:"sent"`
	OK         int64                 `json:"ok"`
	Conflicts  int64                 `json:"conflicts"`
	Overloaded int64                 `json:"overloaded"`
	Rejected   int64                 `json:"rejected"`
	Failed     int64                 `json:"failed"`
	Throughput float64               `json:"throughput_rps"`
	Latency    obs.HistogramSnapshot `json:"latency_ns"`
	Rates      benchRates            `json:"rates"`
	Client     clientStats           `json:"client"`
	Server     serverStats           `json:"server"`
	Replica    *replicaStats         `json:"replica,omitempty"`
}

// replicaStats is the read-replica evidence of a mixed read/write run:
// aggregate read throughput across the read fleet, live-subscription
// fan-out, and follower staleness. Staleness quantiles are the worst
// follower's commit-visibility lag (primary publish wall clock →
// follower apply) from the closing /metricsz scrape.
type replicaStats struct {
	ReadAddrs      []string              `json:"read_addrs"`
	Reads          int64                 `json:"reads"`
	ReadsPerSec    float64               `json:"reads_per_sec"`
	ReadLatency    obs.HistogramSnapshot `json:"read_latency_ns"`
	Subscribers    int                   `json:"subscribers,omitempty"`
	FanoutEvents   int64                 `json:"fanout_events"`
	FanoutPerSec   float64               `json:"fanout_events_per_sec"`
	DroppedEvents  int64                 `json:"dropped_events"`
	StalenessP50MS float64               `json:"staleness_p50_ms"`
	StalenessP99MS float64               `json:"staleness_p99_ms"`
	MaxLagSeq      int64                 `json:"max_lag_seq"`
}

// benchConfig records everything needed to compare runs across PRs:
// the workload shape plus the server build's batching knobs and
// GOMAXPROCS, scraped from /healthz at run start.
type benchConfig struct {
	Addr       string  `json:"addr"`
	Clients    int     `json:"clients"`
	Requests   int     `json:"requests_per_client"`
	Keys       int64   `json:"keys"`
	HotFrac    float64 `json:"hot_frac"`
	Seed       int64   `json:"seed"`
	MaxBatch   int     `json:"max_batch"`
	BatchDelay int64   `json:"batch_delay_ns"`
	GoMaxProcs int     `json:"server_gomaxprocs"`
}

// clientStats is the connection-reuse evidence from httptrace: a
// healthy keep-alive run dials about one connection per client and
// reuses it for everything else. A reuse fraction near zero means the
// client is paying a dial (and its latency) per request and the
// throughput number measures the dialer, not the server.
type clientStats struct {
	ConnsDialed   int64   `json:"conns_dialed"`
	ConnsReused   int64   `json:"conns_reused"`
	ReuseFraction float64 `json:"reuse_fraction"`
}

// connCounts feeds clientStats; GotConn fires once per request with
// the connection's provenance.
var connCounts struct{ dialed, reused atomic.Int64 }

var connTrace = &httptrace.ClientTrace{
	GotConn: func(info httptrace.GotConnInfo) {
		if info.Reused {
			connCounts.reused.Add(1)
		} else {
			connCounts.dialed.Add(1)
		}
	},
}

type benchRates struct {
	Conflict float64 `json:"conflict"`
	Overload float64 `json:"overload"`
}

// serverStats is the group-commit evidence, as deltas of the server's
// obs counters across the run, plus the per-stage pipeline latency
// breakdown scraped from /metrics.
type serverStats struct {
	WALSyncs       int64   `json:"wal_syncs"`
	Commits        int64   `json:"commits"`
	Batches        int64   `json:"batches"`
	CommitsPerSync float64 `json:"commits_per_sync"`
	BatchSizeP99   int64   `json:"batch_size_p99"`
	BatchSizeMax   int64   `json:"batch_size_max"`
	// Sharded servers (vuserved -shards N) additionally report the
	// cross-shard commit count and the per-shard commit distribution,
	// so a load run shows both the 2PC fraction and hot-shard skew.
	CrossCommits int64                     `json:"cross_commits,omitempty"`
	ShardCommits []int64                   `json:"shard_commits,omitempty"`
	Stages       map[string]stageBreakdown `json:"stages"`
}

// stageBreakdown is one pipeline stage's server-side latency summary:
// the observation count is the delta across the run; the quantiles are
// from the closing scrape (the run dominates them on a fresh server).
type stageBreakdown struct {
	Count  int64 `json:"count"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
}

// pipelineStages are the stage families reported in the breakdown, in
// pipeline order.
var pipelineStages = []string{"translate", "verify", "queue", "commit", "fsync", "publish"}

// counters aggregates client-side outcomes.
type counters struct {
	sent, ok, conflicts, overloaded, rejected, failed atomic.Int64
	reads                                             atomic.Int64
}

// readRing round-robins reads (and subscriptions) across the read
// fleet — the follower base URLs, or just the primary.
type readRing struct {
	addrs []string
	next  atomic.Int64
}

func (r *readRing) pick() string {
	return r.addrs[int(r.next.Add(1))%len(r.addrs)]
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "vuserved base URL")
	clients := flag.Int("clients", 8, "concurrent clients")
	requests := flag.Int("requests", 200, "requests per client")
	keys := flag.Int64("keys", 100000, "key domain size (partitioned across clients)")
	hotFrac := flag.Float64("hot", 0, "fraction of ops on shared hot keys (induces conflicts)")
	seed := flag.Int64("seed", 1, "workload seed")
	setup := flag.Bool("setup", true, "create the bench schema and view via /execz first")
	out := flag.String("out", "BENCH_server.json", "report path")
	assertBatching := flag.Bool("assert-batching", false, "exit 1 unless group commit averaged >1 commit per fsync")
	chaos := flag.Bool("chaos", false, "chaos mode: idempotent keyed inserts, retry-through-outage, ack verification; writes BENCH_chaos.json")
	opTimeout := flag.Duration("op-timeout", 60*time.Second, "chaos mode: per-operation retry budget (must cover the server outage)")
	minBatchP99 := flag.Int64("min-batch-p99", 0, "exit 1 unless the server's batch_size_p99 reaches this")
	minCommitsPerSync := flag.Float64("min-commits-per-sync", 0, "exit 1 unless commits/fsync reaches this")
	readFraction := flag.Float64("read-fraction", 0, "fraction of ops issued as view reads (GET /views/NY) against -read-addrs")
	readAddrs := flag.String("read-addrs", "", "comma-separated base URLs reads and subscriptions round-robin over (default: -addr); point at the read replicas to load a replicated deployment")
	subscribers := flag.Int("subscribers", 0, "live /subscribe/NY streams held open across the run (round-robin over -read-addrs); pushed change events are counted into the replica report")
	flag.Parse()

	readFleet := &readRing{addrs: []string{*addr}}
	if *readAddrs != "" {
		readFleet.addrs = nil
		for _, a := range strings.Split(*readAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				readFleet.addrs = append(readFleet.addrs, a)
			}
		}
		if len(readFleet.addrs) == 0 {
			fmt.Fprintln(os.Stderr, "-read-addrs: no usable addresses")
			os.Exit(2)
		}
	}

	// One keep-alive pool sized for the fleet: the default transport
	// caps idle connections at 2 per host, so anything beyond 2 clients
	// would dial (and slow-start) on nearly every request.
	hc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        2 * *clients,
			MaxIdleConnsPerHost: 2 * *clients,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	if *setup {
		if err := runSetup(hc, *addr, *keys); err != nil {
			fmt.Fprintln(os.Stderr, "setup:", err)
			os.Exit(1)
		}
	}

	if *chaos {
		dest := *out
		if dest == "BENCH_server.json" {
			dest = "BENCH_chaos.json"
		}
		os.Exit(runChaos(*addr, *clients, *requests, *seed, *opTimeout, dest))
	}

	before, err := scrapeMetrics(hc, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metrics:", err)
		os.Exit(1)
	}
	promBefore, err := scrapeProm(hc, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prom metrics:", err)
		os.Exit(1)
	}
	readBefore := make([]obs.Snapshot, len(readFleet.addrs))
	if *readFraction > 0 || *subscribers > 0 {
		for i, a := range readFleet.addrs {
			readBefore[i], _ = scrapeMetrics(hc, a)
		}
	}

	// Subscriptions are long-lived; they need a client without the load
	// client's per-request timeout, and a cancel to tear them down once
	// the workload drains.
	subCtx, subCancel := context.WithCancel(context.Background())
	defer subCancel()
	var fanout atomic.Int64
	var subWG sync.WaitGroup
	activeSubs := 0
	subHC := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *subscribers + 1}}
	for i := 0; i < *subscribers; i++ {
		req, err := http.NewRequestWithContext(subCtx, http.MethodGet, readFleet.pick()+"/subscribe/NY", nil)
		if err != nil {
			continue
		}
		resp, err := subHC.Do(req)
		if err != nil || resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "subscribe %d: %v (status %v)\n", i, err, resp)
			if resp != nil {
				resp.Body.Close()
			}
			continue
		}
		activeSubs++
		subWG.Add(1)
		go func(body io.ReadCloser) {
			defer subWG.Done()
			defer body.Close()
			sc := bufio.NewScanner(body)
			for sc.Scan() {
				if strings.HasPrefix(sc.Text(), "event: change") {
					fanout.Add(1)
				}
			}
		}(resp.Body)
	}

	lat := obs.NewHistogram()
	readLat := obs.NewHistogram()
	var cnt counters
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runClient(hc, *addr, id, *clients, *requests, *keys, *hotFrac, *seed,
				*readFraction, readFleet, lat, readLat, &cnt)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	subCancel()
	subWG.Wait()

	after, err := scrapeMetrics(hc, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metrics:", err)
		os.Exit(1)
	}
	promAfter, err := scrapeProm(hc, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prom metrics:", err)
		os.Exit(1)
	}

	cfg := benchConfig{
		Addr: *addr, Clients: *clients, Requests: *requests,
		Keys: *keys, HotFrac: *hotFrac, Seed: *seed,
	}
	if h, err := scrapeHealth(hc, *addr); err == nil {
		cfg.MaxBatch, cfg.BatchDelay, cfg.GoMaxProcs = h.MaxBatch, h.BatchDelayNS, h.GoMaxProcs
	} else {
		fmt.Fprintln(os.Stderr, "healthz:", err)
	}
	rep := buildReport(cfg, elapsed, lat, &cnt, before, after)
	rep.Server.Stages = stageBreakdowns(promBefore, promAfter)
	if *readFraction > 0 || *subscribers > 0 {
		rs := &replicaStats{
			ReadAddrs:    readFleet.addrs,
			Reads:        cnt.reads.Load(),
			ReadLatency:  readLat.Stats(),
			Subscribers:  activeSubs,
			FanoutEvents: fanout.Load(),
		}
		if elapsed > 0 {
			rs.ReadsPerSec = float64(rs.Reads) / elapsed.Seconds()
			rs.FanoutPerSec = float64(rs.FanoutEvents) / elapsed.Seconds()
		}
		// Staleness is the worst follower's closing lag quantiles; shed
		// events are summed as deltas across the fleet.
		for i, a := range readFleet.addrs {
			snap, err := scrapeMetrics(hc, a)
			if err != nil {
				fmt.Fprintf(os.Stderr, "replica metrics %s: %v\n", a, err)
				continue
			}
			if lag, ok := snap.Histograms["server.replica.lag.ns"]; ok {
				if ms := float64(lag.P50) / 1e6; ms > rs.StalenessP50MS {
					rs.StalenessP50MS = ms
				}
				if ms := float64(lag.P99) / 1e6; ms > rs.StalenessP99MS {
					rs.StalenessP99MS = ms
				}
			}
			if g := snap.Gauges["server.replica.lag_seq"]; g > rs.MaxLagSeq {
				rs.MaxLagSeq = g
			}
			rs.DroppedEvents += snap.Counters["server.replica.dropped_events"] -
				readBefore[i].Counters["server.replica.dropped_events"]
		}
		rep.Replica = rs
	}
	rep.Client.ConnsDialed = connCounts.dialed.Load()
	rep.Client.ConnsReused = connCounts.reused.Load()
	if total := rep.Client.ConnsDialed + rep.Client.ConnsReused; total > 0 {
		rep.Client.ReuseFraction = float64(rep.Client.ConnsReused) / float64(total)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "encoding report:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "writing report:", err)
		os.Exit(1)
	}
	fmt.Printf("vuload: %d ok / %d sent in %s (%.0f req/s), p50 %s p99 %s p999 %s, %.2f commits/fsync\n",
		rep.OK, rep.Sent, elapsed.Round(time.Millisecond), rep.Throughput,
		time.Duration(rep.Latency.P50), time.Duration(rep.Latency.P99),
		time.Duration(rep.Latency.P999), rep.Server.CommitsPerSync)
	fmt.Printf("vuload: conns dialed %d reused %d (%.1f%% reuse), batch p99 %d max %d\n",
		rep.Client.ConnsDialed, rep.Client.ConnsReused, 100*rep.Client.ReuseFraction,
		rep.Server.BatchSizeP99, rep.Server.BatchSizeMax)
	if rs := rep.Replica; rs != nil {
		fmt.Printf("vuload: reads %d (%.0f/s) over %d addrs, read p50 %s p99 %s\n",
			rs.Reads, rs.ReadsPerSec, len(rs.ReadAddrs),
			time.Duration(rs.ReadLatency.P50), time.Duration(rs.ReadLatency.P99))
		fmt.Printf("vuload: staleness p50 %.2fms p99 %.2fms (max lag %d commits), fanout %d events (%.0f/s, %d shed) to %d subscribers\n",
			rs.StalenessP50MS, rs.StalenessP99MS, rs.MaxLagSeq,
			rs.FanoutEvents, rs.FanoutPerSec, rs.DroppedEvents, rs.Subscribers)
	}
	for _, name := range pipelineStages {
		if st, ok := rep.Server.Stages[name]; ok && st.Count > 0 {
			fmt.Printf("vuload:   stage %-9s n=%-6d p50 %-10s p99 %s\n",
				name, st.Count, time.Duration(st.P50NS), time.Duration(st.P99NS))
		}
	}
	if *assertBatching && rep.Server.CommitsPerSync <= 1 {
		fmt.Fprintf(os.Stderr, "vuload: group commit did not batch (%.2f commits/fsync)\n", rep.Server.CommitsPerSync)
		os.Exit(1)
	}
	if *minBatchP99 > 0 && rep.Server.BatchSizeP99 < *minBatchP99 {
		fmt.Fprintf(os.Stderr, "vuload: batch_size_p99 %d below floor %d\n", rep.Server.BatchSizeP99, *minBatchP99)
		os.Exit(1)
	}
	if *minCommitsPerSync > 0 && rep.Server.CommitsPerSync < *minCommitsPerSync {
		fmt.Fprintf(os.Stderr, "vuload: %.2f commits/fsync below floor %.2f\n", rep.Server.CommitsPerSync, *minCommitsPerSync)
		os.Exit(1)
	}
}

// healthKnobs is the slice of /healthz this tool records into the
// bench config block.
type healthKnobs struct {
	MaxBatch     int   `json:"max_batch"`
	BatchDelayNS int64 `json:"batch_delay_ns"`
	GoMaxProcs   int   `json:"gomaxprocs"`
}

// scrapeHealth fetches the server's batching knobs from /healthz.
func scrapeHealth(hc *http.Client, addr string) (healthKnobs, error) {
	var h healthKnobs
	resp, err := hc.Get(addr + "/healthz")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	return h, json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h)
}

func buildReport(cfg benchConfig, elapsed time.Duration, lat *obs.Histogram, cnt *counters, before, after obs.Snapshot) benchReport {
	rep := benchReport{
		Config:     cfg,
		ElapsedNS:  int64(elapsed),
		Sent:       cnt.sent.Load(),
		OK:         cnt.ok.Load(),
		Conflicts:  cnt.conflicts.Load(),
		Overloaded: cnt.overloaded.Load(),
		Rejected:   cnt.rejected.Load(),
		Failed:     cnt.failed.Load(),
		Latency:    lat.Stats(),
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.OK) / elapsed.Seconds()
	}
	if rep.Sent > 0 {
		rep.Rates.Conflict = float64(rep.Conflicts) / float64(rep.Sent)
		rep.Rates.Overload = float64(rep.Overloaded) / float64(rep.Sent)
	}
	delta := func(name string) int64 { return after.Counters[name] - before.Counters[name] }
	rep.Server = serverStats{
		WALSyncs: delta("wal.sync"),
		Commits:  delta("server.commit.committed"),
		Batches:  delta("server.commit.batches"),
	}
	if rep.Server.WALSyncs > 0 {
		rep.Server.CommitsPerSync = float64(rep.Server.Commits) / float64(rep.Server.WALSyncs)
	}
	if h, ok := after.Histograms["server.commit.batch_size"]; ok {
		rep.Server.BatchSizeP99 = h.P99
		rep.Server.BatchSizeMax = h.Max
	}
	rep.Server.CrossCommits = delta("server.cross.commits")
	for i := 0; ; i++ {
		name := fmt.Sprintf("server.shard.%d.committed", i)
		if _, ok := after.Counters[name]; !ok {
			break
		}
		rep.Server.ShardCommits = append(rep.Server.ShardCommits, delta(name))
	}
	return rep
}

// runSetup creates the bench schema statement by statement, tolerating
// "already exists" (a durable store restarted under the same data dir
// keeps its tables; views are not durable and are always recreated).
func runSetup(hc *http.Client, addr string, keys int64) error {
	stmts := []string{
		fmt.Sprintf("CREATE DOMAIN KeyDom AS INT RANGE 1 TO %d;", keys),
		"CREATE DOMAIN LocDom AS STRING ('New York', 'San Francisco', 'Austin');",
		"CREATE TABLE EMP (EmpNo KeyDom, Location LocDom, PRIMARY KEY (EmpNo));",
		"CREATE VIEW NY AS SELECT * FROM EMP WHERE Location = 'New York';",
		// Pin in-place translation classes. The default pick-first
		// policy orders candidates by canonical encoding, which ranks a
		// key-moving replace's R-4 (insert new + flip old out of the
		// view) ahead of R-2 (replace in place): semantically fine, but
		// every R-4 leaks the flipped tuple into the base table, so a
		// steady-state workload grows the base without bound and the
		// snapshot copy-on-write pays O(leaked rows) per publish.
		"SET POLICY NY PREFER 'R-1', 'R-2', 'I-1', 'D-1';",
	}
	for _, stmt := range stmts {
		body, _ := json.Marshal(map[string]string{"script": stmt})
		resp, err := hc.Post(addr+"/execz", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && !strings.Contains(string(msg), "already exists") {
			return fmt.Errorf("%s: %s", stmt, msg)
		}
	}
	return nil
}

// scrapeProm fetches /metrics and parses the Prometheus text format
// into a flat map: plain samples under "name", quantile samples under
// "name|q" (e.g. "server_stage_commit_ns|0.99"). Comment lines and
// anything it does not understand are skipped.
func scrapeProm(hc *http.Client, addr string) (map[string]float64, error) {
	resp, err := hc.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		key := name
		if base, labels, hasLabels := strings.Cut(name, "{"); hasLabels {
			q, found := quantileLabel(strings.TrimSuffix(labels, "}"))
			if !found {
				continue
			}
			key = base + "|" + q
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			continue
		}
		out[key] = v
	}
	return out, nil
}

// quantileLabel extracts the quantile="..." value from a label set.
func quantileLabel(labels string) (string, bool) {
	for _, l := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(l, "=")
		if ok && strings.TrimSpace(k) == "quantile" {
			return strings.Trim(strings.TrimSpace(v), `"`), true
		}
	}
	return "", false
}

// stageBreakdowns folds the before/after Prometheus scrapes into the
// per-stage latency breakdown: counts as deltas across the run,
// quantiles from the closing scrape. Stages that saw no observations
// during the run are omitted.
func stageBreakdowns(before, after map[string]float64) map[string]stageBreakdown {
	out := map[string]stageBreakdown{}
	for _, name := range pipelineStages {
		fam := "server_stage_" + name + "_ns"
		n := int64(after[fam+"_count"] - before[fam+"_count"])
		if n <= 0 {
			continue
		}
		out[name] = stageBreakdown{
			Count:  n,
			P50NS:  int64(after[fam+"|0.5"]),
			P90NS:  int64(after[fam+"|0.9"]),
			P99NS:  int64(after[fam+"|0.99"]),
			P999NS: int64(after[fam+"|0.999"]),
		}
	}
	return out
}

func scrapeMetrics(hc *http.Client, addr string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := hc.Get(addr + "/metricsz")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("metricsz: status %d", resp.StatusCode)
	}
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}

// runClient drives one client's share of the workload: a rotation of
// insert → replace (move to a fresh key) → delete over the client's own
// key partition, with an optional fraction of contended hot-key ops and
// an optional fraction of view reads round-robined across the read
// fleet. 429 and 503 responses are retried on a per-client jittered
// backoff schedule seeded from the workload seed.
func runClient(hc *http.Client, addr string, id, clients, requests int, keys int64, hotFrac float64, seed int64, readFrac float64, reads *readRing, lat, readLat *obs.Histogram, cnt *counters) {
	rng := rand.New(rand.NewSource(seed + int64(id)))
	bo := newBackoff(50*time.Millisecond, 800*time.Millisecond, seed+int64(id))
	hotBase := keys - 16 // top 16 keys are the shared hot range
	span := (hotBase) / int64(clients)
	base := int64(id) * span
	next := base + 1
	var alive []int64

	fresh := func() (int64, bool) {
		if next > base+span {
			return 0, false
		}
		k := next
		next++
		return k, true
	}

	for n := 0; n < requests; n++ {
		var path string
		var body map[string]any
		if readFrac > 0 && rng.Float64() < readFrac {
			issueRead(hc, reads.pick()+"/views/NY", readLat, cnt)
			continue
		}
		if hotFrac > 0 && rng.Float64() < hotFrac {
			// Contended: everyone fights over the same hot key with a
			// delete-then-reinsert pair; losers see 409 (commit conflict)
			// or a stale-read rejection.
			k := hotBase + 1 + rng.Int63n(16)
			if rng.Intn(2) == 0 {
				path = "/views/NY/insert"
				body = map[string]any{"values": []string{strconv.FormatInt(k, 10), "New York"}}
			} else {
				path = "/views/NY/delete"
				body = map[string]any{"where": map[string]string{"EmpNo": strconv.FormatInt(k, 10)}}
			}
		} else {
			switch n % 3 {
			case 0:
				k, ok := fresh()
				if !ok {
					continue
				}
				path = "/views/NY/insert"
				body = map[string]any{"values": []string{strconv.FormatInt(k, 10), "New York"}}
				alive = append(alive, k)
			case 1:
				if len(alive) == 0 {
					continue
				}
				k := alive[len(alive)-1]
				to, ok := fresh()
				if !ok {
					continue
				}
				path = "/views/NY/replace"
				body = map[string]any{
					"where": map[string]string{"EmpNo": strconv.FormatInt(k, 10)},
					"set":   map[string]string{"EmpNo": strconv.FormatInt(to, 10)},
				}
				alive[len(alive)-1] = to
			default:
				if len(alive) == 0 {
					continue
				}
				k := alive[len(alive)-1]
				alive = alive[:len(alive)-1]
				path = "/views/NY/delete"
				body = map[string]any{"where": map[string]string{"EmpNo": strconv.FormatInt(k, 10)}}
			}
		}
		issue(hc, addr+path, body, lat, cnt, bo)
	}
}

// issueRead fetches the view once from one read-fleet node. Reads are
// counted separately from update outcomes (cnt.reads) so the write
// throughput headline keeps its meaning in a mixed run.
func issueRead(hc *http.Client, url string, lat *obs.Histogram, cnt *counters) {
	cnt.sent.Add(1)
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		cnt.failed.Add(1)
		return
	}
	req = req.WithContext(httptrace.WithClientTrace(req.Context(), connTrace))
	start := time.Now()
	resp, err := hc.Do(req)
	lat.Observe(int64(time.Since(start)))
	if err != nil {
		cnt.failed.Add(1)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<22))
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		cnt.reads.Add(1)
	} else {
		cnt.failed.Add(1)
	}
}

// issue sends one update, classifying the outcome and retrying
// overloads (429) and brownouts (503) on the client's jittered backoff
// schedule (up to 3 attempts). The Retry-After hint floors each delay;
// full jitter on top keeps a burst of rejected clients from
// re-arriving in lockstep.
func issue(hc *http.Client, url string, body map[string]any, lat *obs.Histogram, cnt *counters, bo *backoff) {
	payload, _ := json.Marshal(body)
	for attempt := 0; ; attempt++ {
		cnt.sent.Add(1)
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			cnt.failed.Add(1)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req = req.WithContext(httptrace.WithClientTrace(req.Context(), connTrace))
		start := time.Now()
		resp, err := hc.Do(req)
		lat.Observe(int64(time.Since(start)))
		if err != nil {
			cnt.failed.Add(1)
			return
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			cnt.ok.Add(1)
			return
		case resp.StatusCode == http.StatusConflict:
			cnt.conflicts.Add(1)
			return
		case resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable:
			cnt.overloaded.Add(1)
			if attempt >= 2 {
				return
			}
			after, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			time.Sleep(bo.delay(attempt, time.Duration(after)*100*time.Millisecond))
		case resp.StatusCode == http.StatusBadRequest ||
			resp.StatusCode == http.StatusUnprocessableEntity ||
			resp.StatusCode == http.StatusNotFound:
			// A contended op lost the race before translation (row gone
			// or key taken at snapshot time).
			cnt.rejected.Add(1)
			return
		default:
			cnt.failed.Add(1)
			return
		}
	}
}
