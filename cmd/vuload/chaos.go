// Chaos mode: drive keyed, idempotent inserts against a vuserved that
// something external is killing and restarting (make chaos-soak wires
// kill -9 into the scenario), retrying every operation through the
// outage on the jittered backoff schedule. Afterwards verify the crash
// contract over the wire: every acked insert is present, a retransmit
// of every acked key answers "duplicate" instead of applying again,
// and the /readyz outage window bounds the recovery time. Exits 1 on
// any lost ack, duplicate apply, or dedup miss — CI fails the build.

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// chaosReport is the BENCH_chaos.json shape.
type chaosReport struct {
	Config struct {
		Addr        string `json:"addr"`
		Clients     int    `json:"clients"`
		Requests    int    `json:"requests_per_client"`
		Seed        int64  `json:"seed"`
		OpTimeoutNS int64  `json:"op_timeout_ns"`
	} `json:"config"`
	ElapsedNS int64 `json:"elapsed_ns"`
	// Workload outcomes.
	Acked      int64 `json:"acked"`      // inserts that received a 200
	DedupHits  int64 `json:"dedup_hits"` // 200s answered from the dedup table (duplicate: true)
	Retries    int64 `json:"retries"`    // extra attempts across all ops
	Unresolved int64 `json:"unresolved"` // ops whose retry budget ran out (fate unknown)
	Rejected   int64 `json:"rejected"`   // unexpected clean rejections (4xx)
	// Contract violations — any nonzero fails the run.
	LostAcks         int64 `json:"lost_acks"`         // acked rows absent from the final view
	DuplicateApplies int64 `json:"duplicate_applies"` // acked key re-applied fresh on retransmit
	DedupMisses      int64 `json:"dedup_misses"`      // landed key the server no longer recognizes
	// Recovery, from the /readyz monitor.
	UnreadyWindows int   `json:"unready_windows"`
	RecoveryNS     int64 `json:"recovery_time_ns"` // longest contiguous unready window
	TotalUnreadyNS int64 `json:"total_unready_ns"`
}

// readyMonitor polls /readyz and measures unready windows (server
// down, draining, or degraded). The longest window is the recovery
// time: crash to serving again.
type readyMonitor struct {
	addr string
	stop chan struct{}
	done chan struct{}

	mu           sync.Mutex
	windows      int
	maxUnready   time.Duration
	totalUnready time.Duration
}

func startReadyMonitor(addr string) *readyMonitor {
	m := &readyMonitor{addr: addr, stop: make(chan struct{}), done: make(chan struct{})}
	go m.run()
	return m
}

func (m *readyMonitor) run() {
	defer close(m.done)
	hc := &http.Client{Timeout: 500 * time.Millisecond}
	var downSince time.Time
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
		}
		ready := false
		if resp, err := hc.Get(m.addr + "/readyz"); err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			ready = resp.StatusCode == http.StatusOK
		}
		m.mu.Lock()
		switch {
		case !ready && downSince.IsZero():
			downSince = time.Now()
		case ready && !downSince.IsZero():
			w := time.Since(downSince)
			downSince = time.Time{}
			m.windows++
			m.totalUnready += w
			if w > m.maxUnready {
				m.maxUnready = w
			}
		}
		m.mu.Unlock()
	}
}

func (m *readyMonitor) finish() (windows int, max, total time.Duration) {
	close(m.stop)
	<-m.done
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.windows, m.maxUnready, m.totalUnready
}

// chaosInsert posts one keyed insert and returns the status plus the
// decoded duplicate flag.
func chaosInsert(hc *http.Client, addr, key string, emp int64) (status int, duplicate bool, retryAfter time.Duration, err error) {
	payload, _ := json.Marshal(map[string]any{"values": []string{strconv.FormatInt(emp, 10), "New York"}})
	req, err := http.NewRequest(http.MethodPost, addr+"/views/NY/insert", bytes.NewReader(payload))
	if err != nil {
		return 0, false, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := hc.Do(req)
	if err != nil {
		return 0, false, 0, err
	}
	defer resp.Body.Close()
	var reply struct {
		Duplicate bool `json:"duplicate"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&reply)
	after, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
	return resp.StatusCode, reply.Duplicate, time.Duration(after) * 100 * time.Millisecond, nil
}

// runChaos executes the chaos workload and verification; the returned
// code is the process exit status.
func runChaos(addr string, clients, requests int, seed int64, opTimeout time.Duration, out string) int {
	rep := &chaosReport{}
	rep.Config.Addr = addr
	rep.Config.Clients = clients
	rep.Config.Requests = requests
	rep.Config.Seed = seed
	rep.Config.OpTimeoutNS = int64(opTimeout)

	mon := startReadyMonitor(addr)
	var acked, dedupHits, retries, unresolved, rejected, dedupMisses atomic.Int64
	ackedEmps := make([]map[int64]string, clients) // emp -> key, per client
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		ackedEmps[c] = map[int64]string{}
		go func(id int) {
			defer wg.Done()
			hc := &http.Client{Timeout: 5 * time.Second}
			bo := newBackoff(100*time.Millisecond, 2*time.Second, seed+int64(id))
			for j := 0; j < requests; j++ {
				emp := int64(id*requests + j + 1)
				key := fmt.Sprintf("chaos-c%d-op%d", id, j)
				deadline := time.Now().Add(opTimeout)
			attempts:
				for attempt := 0; ; attempt++ {
					status, dup, after, err := chaosInsert(hc, addr, key, emp)
					switch {
					case err == nil && status == http.StatusOK:
						acked.Add(1)
						ackedEmps[id][emp] = key
						if dup {
							dedupHits.Add(1)
						}
						break attempts
					case err == nil && status == http.StatusConflict:
						// A fresh unique key conflicting means the row landed
						// on an earlier ambiguous attempt but the key was not
						// recognized: dedup protocol violation.
						dedupMisses.Add(1)
						ackedEmps[id][emp] = key
						break attempts
					case err == nil && (status == http.StatusBadRequest ||
						status == http.StatusNotFound || status == http.StatusUnprocessableEntity):
						rejected.Add(1)
						break attempts
					default:
						// Transport error, 429, 5xx, 504: retry through the
						// outage — the idempotency key makes this safe.
						if time.Now().After(deadline) {
							unresolved.Add(1)
							break attempts
						}
						retries.Add(1)
						time.Sleep(bo.delay(attempt, after))
					}
				}
			}
		}(c)
	}
	wg.Wait()
	rep.ElapsedNS = int64(time.Since(start))
	windows, maxUnready, totalUnready := mon.finish()
	rep.UnreadyWindows = windows
	rep.RecoveryNS = int64(maxUnready)
	rep.TotalUnreadyNS = int64(totalUnready)
	rep.Acked = acked.Load()
	rep.DedupHits = dedupHits.Load()
	rep.Retries = retries.Load()
	rep.Unresolved = unresolved.Load()
	rep.Rejected = rejected.Load()
	rep.DedupMisses = dedupMisses.Load()

	// Verification pass 1: retransmit every acked key; the server must
	// answer duplicate, never re-apply.
	hc := &http.Client{Timeout: 10 * time.Second}
	for id := range ackedEmps {
		for emp, key := range ackedEmps[id] {
			status, dup, _, err := chaosInsert(hc, addr, key, emp)
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "vuload chaos: verify retransmit of %s: %v\n", key, err)
				rep.Unresolved++
			case status == http.StatusOK && dup:
				// expected
			case status == http.StatusOK:
				rep.DuplicateApplies++
			case status == http.StatusConflict:
				rep.DedupMisses++
			default:
				fmt.Fprintf(os.Stderr, "vuload chaos: verify retransmit of %s: status %d\n", key, status)
				rep.Unresolved++
			}
		}
	}

	// Verification pass 2: every acked row must be present in the view.
	present, err := chaosReadEmps(hc, addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vuload chaos: reading final view:", err)
		return 1
	}
	for id := range ackedEmps {
		for emp, key := range ackedEmps[id] {
			if !present[emp] {
				rep.LostAcks++
				fmt.Fprintf(os.Stderr, "vuload chaos: LOST ACK %s (EmpNo %d)\n", key, emp)
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vuload chaos: encoding report:", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vuload chaos: writing report:", err)
		return 1
	}
	fmt.Printf("vuload chaos: acked=%d dedup_hits=%d retries=%d unresolved=%d lost_acks=%d duplicate_applies=%d dedup_misses=%d recovery=%s windows=%d\n",
		rep.Acked, rep.DedupHits, rep.Retries, rep.Unresolved,
		rep.LostAcks, rep.DuplicateApplies, rep.DedupMisses,
		time.Duration(rep.RecoveryNS).Round(time.Millisecond), rep.UnreadyWindows)
	if rep.LostAcks > 0 || rep.DuplicateApplies > 0 || rep.DedupMisses > 0 {
		fmt.Fprintln(os.Stderr, "vuload chaos: CRASH CONTRACT VIOLATED")
		return 1
	}
	if rep.Acked == 0 {
		fmt.Fprintln(os.Stderr, "vuload chaos: nothing was acked; the run tested nothing")
		return 1
	}
	return 0
}

// chaosReadEmps reads the NY view and returns the set of EmpNo values.
func chaosReadEmps(hc *http.Client, addr string) (map[int64]bool, error) {
	resp, err := hc.Get(addr + "/views/NY")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var reply struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, err
	}
	col := -1
	for i, c := range reply.Columns {
		if c == "EmpNo" {
			col = i
		}
	}
	if col < 0 {
		return nil, fmt.Errorf("view read has no EmpNo column (%v)", reply.Columns)
	}
	present := map[int64]bool{}
	for _, row := range reply.Rows {
		n, err := strconv.ParseInt(row[col], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("non-integer EmpNo %q", row[col])
		}
		present[n] = true
	}
	return present, nil
}
