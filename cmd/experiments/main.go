// Command experiments regenerates every table and figure reproduction
// of the paper's evaluation (see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-run E5] [-list]
//
// Without flags it runs all experiments E1..E13 and prints their
// tables; the exit status is non-zero if any experiment's pass
// condition fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"viewupdate/internal/experiments"
)

func main() {
	runID := flag.String("run", "", "run only the experiment with this id (e.g. E5)")
	list := flag.Bool("list", false, "list experiments and exit")
	outPath := flag.String("o", "", "also write the report to this file")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %-50s [%s]\n", e.ID, e.Title, e.Exhibit)
		}
		return
	}

	var report strings.Builder
	emit := func(format string, args ...interface{}) {
		s := fmt.Sprintf(format, args...)
		fmt.Print(s)
		report.WriteString(s)
	}

	failures := 0
	ran := 0
	for _, e := range all {
		if *runID != "" && e.ID != *runID {
			continue
		}
		ran++
		emit("%s — %s (%s)\n", e.ID, e.Title, e.Exhibit)
		tb, ok, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s ERROR: %v\n", e.ID, err)
			failures++
			continue
		}
		emit("%s\n", tb)
		if !ok {
			fmt.Fprintf(os.Stderr, "%s: pass condition FAILED\n", e.ID)
			failures++
		}
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *outPath, err)
			os.Exit(1)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -run=%s\n", *runID)
		os.Exit(2)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failures)
		os.Exit(1)
	}
	fmt.Printf("all %d experiments passed\n", ran)
}
