// Command experiments regenerates every table and figure reproduction
// of the paper's evaluation (see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-run E5] [-list]
//
// Without flags it runs all experiments E1..E13 and prints their
// tables; the exit status is non-zero if any experiment's pass
// condition fails.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"viewupdate/internal/experiments"
	"viewupdate/internal/obs"
)

func main() {
	runID := flag.String("run", "", "run only the experiment with this id (e.g. E5)")
	list := flag.Bool("list", false, "list experiments and exit")
	outPath := flag.String("o", "", "also write the report to this file")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	flag.Parse()

	if _, err := obs.SetupDefault(os.Stderr, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %-50s [%s]\n", e.ID, e.Title, e.Exhibit)
		}
		return
	}

	var report strings.Builder
	emit := func(format string, args ...interface{}) {
		s := fmt.Sprintf(format, args...)
		fmt.Print(s)
		report.WriteString(s)
	}

	failures := 0
	ran := 0
	for _, e := range all {
		if *runID != "" && e.ID != *runID {
			continue
		}
		ran++
		emit("%s — %s (%s)\n", e.ID, e.Title, e.Exhibit)
		tb, ok, err := e.Run()
		if err != nil {
			slog.Error("experiment failed", "id", e.ID, "err", err)
			failures++
			continue
		}
		emit("%s\n", tb)
		if !ok {
			slog.Error("pass condition failed", "id", e.ID)
			failures++
		}
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(report.String()), 0o644); err != nil {
			slog.Error("writing report", "path", *outPath, "err", err)
			os.Exit(1)
		}
	}
	if ran == 0 {
		slog.Error("no experiment matches", "run", *runID)
		os.Exit(2)
	}
	if failures > 0 {
		slog.Error("experiments failed", "count", failures)
		os.Exit(1)
	}
	fmt.Printf("all %d experiments passed\n", ran)
}
