// Command vuserved serves the view-update engine over HTTP: concurrent
// view reads and view-update translation with a single-writer
// group-commit pipeline over the durable store.
//
// Usage:
//
//	vuserved -addr :8080 -data ./data
//	vuserved -addr :8080 -data ./data -init schema.sql -sync commit
//	vuserved -addr :8080 -data ./data -shards 8
//	vuserved -addr :8081 -data ./replica -follow http://primary:8080 -init views.sql
//
// With -shards N the base relations are partitioned by root-key hash
// into N independent WAL pipelines behind a cross-shard two-phase
// coordinator; see docs/SHARDING.md. The shard count is fixed at store
// creation and must match on every restart.
//
// With -follow URL the engine runs as a read replica: it bootstraps
// from the source's /wal/snapshot (or recovers its local -data dir),
// streams every commit over /wal/stream, and serves reads — including
// /subscribe — while answering 403 on writes. Follower init scripts
// should hold only DDL (definitions skip when already present; INSERTs
// are refused). See docs/REPLICATION.md.
//
// Views and policies are not durable; pass -init with a sqlish script
// (CREATE DOMAIN/TABLE/VIEW, SET POLICY) to define them at boot, or
// POST the script to /execz after startup.
//
// On SIGTERM or SIGINT the server drains gracefully: it stops
// accepting requests, flushes every queued commit through the
// pipeline, checkpoints the store (folding the WAL into a fresh
// snapshot) and exits. See docs/SERVING.md for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"viewupdate/internal/obs"
	"viewupdate/internal/server"
	"viewupdate/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "durable store directory (empty = in-memory only)")
	shards := flag.Int("shards", 1, "root-key hash shards; >1 runs N WAL pipelines behind the cross-shard coordinator (requires -data, fixed at store creation)")
	follow := flag.String("follow", "", "run as a read replica of the engine at this base URL (streams its WAL; writes answer 403); -data makes the replica durable")
	initScript := flag.String("init", "", "sqlish script executed at boot (schema, views, policies)")
	syncMode := flag.String("sync", "commit", "WAL sync policy: commit|always|never")
	maxInFlight := flag.Int("max-in-flight", 64, "bounded commit queue; beyond it requests get 429")
	maxBatch := flag.Int("max-batch", 32, "max commits per group-commit WAL append")
	batchDelay := flag.Duration("batch-delay", 200*time.Microsecond, "adaptive group-commit window: max wait for more commits before fsync under load (0 disables; idle commits never wait)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.Parse()

	logger, err := obs.SetupDefault(os.Stderr, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	obs.Enable(obs.NewSink(logger))

	pol, err := wal.ParseSyncPolicy(*syncMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}

	var script string
	if *initScript != "" {
		data, err := os.ReadFile(*initScript)
		if err != nil {
			slog.Error("reading init script", "path", *initScript, "err", err)
			os.Exit(1)
		}
		script = string(data)
	}

	// The flag's 0 means "no window"; the Config encodes that as a
	// negative delay (its own 0 means "default").
	delay := *batchDelay
	if delay <= 0 {
		delay = -1
	}
	eng, err := server.NewEngine(server.Config{
		Dir:            *data,
		Shards:         *shards,
		Follow:         *follow,
		Sync:           pol,
		MaxInFlight:    *maxInFlight,
		MaxBatch:       *maxBatch,
		MaxBatchDelay:  delay,
		RequestTimeout: *timeout,
		Logger:         logger,
		EnablePprof:    *enablePprof,
	}, script)
	if err != nil {
		slog.Error("starting engine", "err", err)
		os.Exit(1)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.NewHandler(eng),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
		s := <-sig
		slog.Info("draining", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			slog.Error("http shutdown", "err", err)
		}
	}()

	slog.Info("serving", "addr", *addr, "data", *data, "shards", *shards, "follow", *follow,
		"sync", pol.String(), "max_in_flight", *maxInFlight,
		"max_batch", *maxBatch, "batch_delay", batchDelay.String(),
		"pprof", *enablePprof)
	err = srv.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		slog.Error("serve", "err", err)
		os.Exit(1)
	}
	<-done
	if err := eng.Close(); err != nil {
		slog.Error("drain", "err", err)
		os.Exit(1)
	}
	logFinalMetrics()
	slog.Info("drained cleanly")
}

// logFinalMetrics emits the lifetime metrics snapshot as the last act
// of a graceful drain: the headline aggregates as structured attributes
// for log pipelines, plus the full snapshot as JSON so a post-mortem
// has everything a final /metrics scrape would have had.
func logFinalMetrics() {
	s := obs.Active()
	if s == nil {
		return
	}
	snap := s.Metrics().Snapshot()
	req := snap.Histograms["server.request.ns"]
	slog.Info("final metrics",
		"requests", snap.Counters["server.requests"],
		"committed", snap.Counters["server.commit.committed"],
		"batches", snap.Counters["server.commit.batches"],
		"conflicts", snap.Counters["server.commit.conflict"],
		"overload", snap.Counters["server.overload"],
		"wal_syncs", snap.Counters["wal.sync"],
		"request_p50_ns", req.P50,
		"request_p99_ns", req.P99,
		"request_p999_ns", req.P999,
	)
	if data, err := snap.JSON(); err == nil {
		slog.Info("final metrics snapshot", "snapshot", string(data))
	}
}
