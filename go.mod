module viewupdate

go 1.22
