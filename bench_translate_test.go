package viewupdate

// Translation-pipeline benchmarks: the copy-on-write overlay path
// against the clone-per-candidate baseline it replaced. Both modes run
// the same pipeline shape — enumerate, validity, five criteria, policy
// — over identical pre-generated request streams; the baseline judges
// every candidate with a full database clone + full rematerialization
// per validity check (the pre-overlay semantics), the overlay mode is
// the current TraceTranslate. Results land in BENCH_translate.json.
// Run with:
//
//	go test -bench 'BenchmarkTranslate' -run '^$' .

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"viewupdate/internal/core"
	"viewupdate/internal/storage"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
	"viewupdate/internal/workload"
)

// cloneValid is the pre-overlay validity check: clone the whole
// database, apply, rematerialize the whole view, compare. One full
// copy of the state per call — and the criteria checkers call the
// validity predicate repeatedly per candidate.
func cloneValid(db *storage.Database, v view.View, r core.Request, exact bool) func(*update.Translation) bool {
	return func(tr *update.Translation) bool {
		clone := db.Clone()
		if err := clone.Apply(tr); err != nil {
			return false
		}
		after := v.Materialize(clone)
		if exact {
			want, err := r.ApplyToViewSet(v.Materialize(db))
			if err != nil {
				return false
			}
			return after.Equal(want)
		}
		for _, t := range r.AddedTuples() {
			if !after.Contains(t) {
				return false
			}
		}
		for _, t := range r.RemovedTuples() {
			if after.Contains(t) {
				return false
			}
		}
		return true
	}
}

// clonePipeline replays the pre-overlay pipeline sequentially:
// enumerate, then per candidate clone-based validity and the five
// criteria, then the policy. Returns the number of candidates judged.
func clonePipeline(db *storage.Database, v view.View, r core.Request) (int, error) {
	cands, err := core.Enumerate(db, v, r)
	if err != nil {
		return 0, err
	}
	_, isJoin := v.(*view.Join)
	valid := cloneValid(db, v, r, !isJoin)
	var accepted []core.Candidate
	for _, c := range cands {
		if !valid(c.Translation) {
			continue
		}
		if viols := core.CheckCriteria(db, v, r, c.Translation, core.CheckOptions{Valid: valid}); len(viols) > 0 {
			continue
		}
		accepted = append(accepted, c)
	}
	if _, err := (core.PickFirst{}).Choose(r, accepted); err != nil {
		return len(cands), err
	}
	return len(cands), nil
}

// overlayPipeline is the current delta-driven path, probes disabled so
// both modes judge exactly the generator candidates.
func overlayPipeline(db *storage.Database, v view.View, r core.Request) (int, error) {
	_, tr, err := core.TraceTranslate(db, v, nil, r, core.TraceOptions{Probes: false})
	if tr == nil {
		return 0, err
	}
	return len(tr.Candidates), err
}

// benchEntry is one benchmark mode's result row in the JSON report.
type benchEntry struct {
	Iterations       int     `json:"iterations"`
	Warmup           int     `json:"warmup"`
	Candidates       int64   `json:"candidates"`
	CandidatesPerSec float64 `json:"candidates_per_sec"`
	TranslateNsP50   int64   `json:"translate_ns_p50"`
	TranslateNsP99   int64   `json:"translate_ns_p99"`
	AllocsPerOp      uint64  `json:"allocs_per_op"`
}

var benchTranslateResults = map[string]benchEntry{}

// writeBenchTranslate rewrites BENCH_translate.json with every entry
// collected so far plus the overlay/clone speedups where both sides
// have run.
func writeBenchTranslate(b *testing.B) {
	b.Helper()
	out := map[string]interface{}{"benchmarks": benchTranslateResults}
	for _, pair := range []struct{ name, clone, overlay string }{
		{"speedup_sp_candidates_per_sec", "TranslateSP/clone", "TranslateSP/overlay"},
		{"speedup_spj_candidates_per_sec", "TranslateSPJ/clone", "TranslateSPJ/overlay"},
	} {
		c, okC := benchTranslateResults[pair.clone]
		o, okO := benchTranslateResults[pair.overlay]
		if okC && okO && c.CandidatesPerSec > 0 {
			out[pair.name] = o.CandidatesPerSec / c.CandidatesPerSec
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_translate.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// runTranslateBench drives one mode over the request stream, measuring
// per-iteration latency, candidate throughput and allocations.
func runTranslateBench(b *testing.B, name string, db *storage.Database, v view.View,
	reqs []core.Request, pipeline func(*storage.Database, view.View, core.Request) (int, error)) {
	b.Helper()
	b.ReportAllocs()
	// Warm up before measuring: the first iterations pay one-time costs
	// (lazy map growth, allocator and cache warmup) that previously
	// landed in the timed run and skewed the p99 to ~35× the p50.
	warmup := 4
	if warmup > len(reqs) {
		warmup = len(reqs)
	}
	for i := 0; i < warmup; i++ {
		if _, err := pipeline(db, v, reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
	lats := make([]int64, 0, b.N)
	var candidates int64
	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		n, err := pipeline(db, v, reqs[i%len(reqs)])
		if err != nil {
			b.Fatal(err)
		}
		lats = append(lats, int64(time.Since(t0)))
		candidates += int64(n)
	}
	b.StopTimer()
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&msAfter)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	quantile := func(q float64) int64 {
		if len(lats) == 0 {
			return 0
		}
		idx := int(q * float64(len(lats)-1))
		return lats[idx]
	}
	perSec := 0.0
	if elapsed > 0 {
		perSec = float64(candidates) / elapsed
	}
	benchTranslateResults[name] = benchEntry{
		Iterations:       b.N,
		Warmup:           warmup,
		Candidates:       candidates,
		CandidatesPerSec: perSec,
		TranslateNsP50:   quantile(0.50),
		TranslateNsP99:   quantile(0.99),
		AllocsPerOp:      (msAfter.Mallocs - msBefore.Mallocs) / uint64(b.N),
	}
	b.ReportMetric(perSec, "candidates/s")
	writeBenchTranslate(b)
}

// spBenchRequests pre-generates a fixed request stream on
// BenchmarkObsPipeline's workload, shared by both modes.
func spBenchRequests(b *testing.B) (*workload.SPWorkload, []core.Request) {
	b.Helper()
	w := workload.MustNewSP(workload.SPConfig{
		Keys: 400, Attrs: 4, DomainSize: 6,
		SelectingAttrs: 2, HiddenAttrs: 2, Tuples: 200, Seed: 21,
	})
	kinds := []update.Kind{update.Insert, update.Delete, update.Replace}
	var reqs []core.Request
	for i := 0; len(reqs) < 60 && i < 600; i++ {
		if r, ok := w.NextRequest(kinds[i%len(kinds)]); ok {
			reqs = append(reqs, r)
		}
	}
	if len(reqs) == 0 {
		b.Fatal("no requests")
	}
	return w, reqs
}

// BenchmarkTranslateSP compares the two modes on the SP workload of
// BenchmarkObsPipeline.
func BenchmarkTranslateSP(b *testing.B) {
	w, reqs := spBenchRequests(b)
	b.Run("clone", func(b *testing.B) {
		runTranslateBench(b, "TranslateSP/clone", w.DB, w.View, reqs, clonePipeline)
	})
	b.Run("overlay", func(b *testing.B) {
		runTranslateBench(b, "TranslateSP/overlay", w.DB, w.View, reqs, overlayPipeline)
	})
}

// spjBenchRequests pre-generates deletes, root-payload replaces and
// fresh-root inserts on a depth-2 reference tree.
func spjBenchRequests(b *testing.B) (*workload.TreeWorkload, []core.Request) {
	b.Helper()
	w := workload.MustNewTree(workload.TreeConfig{
		Depth: 2, Fanout: 2, Keys: 300, TuplesPerRelation: 80, Seed: 7,
	})
	payloadAttr := "P0"
	var reqs []core.Request
	for i := 0; len(reqs) < 30 && i < 300; i++ {
		switch i % 3 {
		case 0:
			if r, ok := w.InsertRequestForFreshRoot(); ok {
				reqs = append(reqs, r)
			}
		case 1:
			if row, ok := w.RandomRow(); ok {
				reqs = append(reqs, core.DeleteRequest(row))
			}
		default:
			if row, ok := w.RandomRow(); ok {
				old := row.MustGet(payloadAttr).Int()
				nu := row.MustWith(payloadAttr, value.NewInt((old+1)%100))
				reqs = append(reqs, core.ReplaceRequest(row, nu))
			}
		}
	}
	if len(reqs) == 0 {
		b.Fatal("no requests")
	}
	return w, reqs
}

// BenchmarkTranslateSPJ compares the two modes on the join-view tree
// workload.
func BenchmarkTranslateSPJ(b *testing.B) {
	w, reqs := spjBenchRequests(b)
	b.Run("clone", func(b *testing.B) {
		runTranslateBench(b, "TranslateSPJ/clone", w.DB, w.View, reqs, clonePipeline)
	})
	b.Run("overlay", func(b *testing.B) {
		runTranslateBench(b, "TranslateSPJ/overlay", w.DB, w.View, reqs, overlayPipeline)
	})
}
